"""Composable compilation pipeline: passes, pass context, pass traces.

The paper's methodologies are compositions of orthogonal stages —
placement (QAIM/greedy/random), ordering (IP/IC/VIC), routing
(layered/SABRE), then optional crosstalk sequentialisation and peephole
lowering.  This module makes that composition explicit:

* :class:`PassContext` — the mutable state a compilation accumulates: the
  program, device, calibration, rng, live mapping, circuit under
  construction, warnings, and the structured **pass trace**;
* :class:`Pass` — the protocol every stage implements (a ``name`` and a
  ``run(context)``);
* :class:`PassRecord` — one trace entry: per-pass wall time, SWAPs
  inserted, depth/gate-count deltas, and pass-specific extras;
* :class:`PipelineSpec` — a declarative description of a full flow
  (placement, ordering, router, knobs); the paper's named methods are
  :data:`repro.compiler.flow.METHOD_PRESETS` entries of this type;
* :func:`build_pipeline` — spec → concrete :class:`Pipeline`;
* :class:`Pipeline` — runs the passes in order, timing each one and
  appending a :class:`PassRecord` per pass to ``context.trace``.

Every stochastic tie-break draws from ``context.rng`` in the same order
the monolithic flow did, so a pipeline built from a preset spec produces
the *gate-for-gate identical* circuit for a fixed seed (the equivalence
suite asserts this for every preset on both paper devices).

New stages plug in without touching :mod:`repro.compiler.flow`: implement
the :class:`Pass` protocol and insert the instance anywhere in a
:class:`Pipeline`'s pass list.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import warnings as _warnings
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..circuits import QuantumCircuit, decompose_to_basis
from ..hardware.coupling import CouplingGraph
from ..hardware.target import Target, as_target
from ..qaoa.problems import QAOAProgram
from .backend import ConventionalBackend
from .mapping import Mapping

__all__ = [
    "PassRecord",
    "PassContext",
    "Pass",
    "PipelineSpec",
    "Pipeline",
    "build_pipeline",
    "PlacementPass",
    "RandomOrderingPass",
    "IPOrderingPass",
    "VICDistancePass",
    "RoutingPass",
    "IncrementalRoutingPass",
    "CrosstalkPass",
    "PeepholePass",
    "make_router",
]

ParamPair = Tuple[int, int, float]


# ----------------------------------------------------------------------
# trace records
# ----------------------------------------------------------------------
@dataclasses.dataclass
class PassRecord:
    """One pass's contribution to a compilation.

    Attributes:
        name: Pass identifier, e.g. ``"place/qaim"`` or ``"route/ic"``.
        seconds: Wall-clock time the pass spent (instrumentation included).
        swaps: SWAP gates this pass inserted.
        depth_delta: Change in the working circuit's high-level depth.
        gate_delta: Change in the working circuit's instruction count.
        info: Pass-specific extras (layer counts, fallbacks taken, ...).
    """

    name: str
    seconds: float
    swaps: int = 0
    depth_delta: int = 0
    gate_delta: int = 0
    info: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form (what serialisation and telemetry consume)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "swaps": self.swaps,
            "depth_delta": self.depth_delta,
            "gate_delta": self.gate_delta,
            "info": dict(self.info),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PassRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            seconds=float(payload["seconds"]),
            swaps=int(payload.get("swaps", 0)),
            depth_delta=int(payload.get("depth_delta", 0)),
            gate_delta=int(payload.get("gate_delta", 0)),
            info=dict(payload.get("info", {})),
        )


@dataclasses.dataclass
class PassContext:
    """Everything a pass may read or evolve.

    A context is created once per compilation and threaded through every
    pass; passes communicate exclusively through it.

    Attributes:
        program: The logical QAOA program being compiled.
        target: The memoized device view
            (:class:`~repro.hardware.target.Target`): coupling,
            calibration, and every derived oracle (distance tables,
            connectivity profiles, shortest paths, conflict sets) in one
            shared, immutable bundle.
        rng: Generator driving every stochastic tie-break.  Passes must
            draw from it in pipeline order — rng discipline is what makes
            a pipeline reproducible and seed-equivalent to the old flow.
        mapping: Live logical→physical mapping (set by placement, evolved
            by routing).
        initial_mapping: Snapshot of ``mapping`` right after placement.
        circuit: The physical circuit under construction.
        swap_count: SWAPs inserted so far.
        level_gates: Ordered CPHASE triples per QAOA level (set by ordering
            passes for the monolithic route; incremental routing ignores
            it and orders gates layer-at-a-time itself).
        distance_metric: Which of the target's distance tables routing
            steers by — ``"hop"`` (default) or ``"vic"`` after a
            :class:`VICDistancePass` resolved a usable reliability table.
        encoding: How the circuit's register relates to the program's
            logical qubits — ``"direct"`` (mappings are logical→physical)
            or ``"parity"`` (mappings are parity-slot→physical; see
            :mod:`repro.compiler.parity`).
        encoding_info: Encoding-specific decode metadata (empty for the
            direct encoding).
        warnings: Degradation provenance accumulated across passes.
        trace: One :class:`PassRecord` per completed pass.
    """

    program: QAOAProgram
    target: Target
    rng: np.random.Generator
    mapping: Optional[Mapping] = None
    initial_mapping: Optional[Dict[int, int]] = None
    circuit: Optional[QuantumCircuit] = None
    final_mapping: Optional[Dict[int, int]] = None
    swap_count: int = 0
    level_gates: Optional[List[List[ParamPair]]] = None
    distance_metric: str = "hop"
    encoding: str = "direct"
    encoding_info: dict = dataclasses.field(default_factory=dict)
    warnings: List[str] = dataclasses.field(default_factory=list)
    trace: List[PassRecord] = dataclasses.field(default_factory=list)

    @property
    def coupling(self) -> CouplingGraph:
        """The target's device topology (delegate)."""
        return self.target.coupling

    @property
    def calibration(self):
        """The target's calibration (delegate; ``None`` when absent)."""
        return self.target.calibration

    def routing_distances(self) -> Optional[np.ndarray]:
        """The distance-table override for the active metric (``None``
        means hop distances, served by the target's read-only view)."""
        return self.target.routing_distances(self.distance_metric)

    # Pre-Target name kept for external passes that read the override.
    @property
    def distance_matrix(self) -> Optional[np.ndarray]:
        return self.routing_distances()


@runtime_checkable
class Pass(Protocol):
    """The stage protocol: a ``name`` plus a ``run`` that evolves the
    context in place.  Implementations must confine *all* communication to
    the :class:`PassContext` (and draw randomness only from its rng)."""

    name: str

    def run(self, context: PassContext) -> None:
        """Execute the pass, mutating ``context``."""
        ...


# ----------------------------------------------------------------------
# declarative specs
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PipelineSpec:
    """Declarative description of a full compilation flow.

    The paper's named methods are preset instances of this spec (see
    :data:`repro.compiler.flow.METHOD_PRESETS`); arbitrary combinations —
    e.g. ``greedy_e`` placement with ``vic`` ordering, or a SABRE-routed
    ``ip`` — are expressed the same way.

    Iterating a spec yields ``(placement, ordering)``, preserving the
    pre-pipeline tuple form of ``METHOD_PRESETS`` for existing callers.
    """

    placement: str = "qaim"
    ordering: str = "random"
    router: str = "layered"
    qaim_radius: int = 2
    packing_limit: Optional[int] = None
    lower: bool = False
    constraint_strength: float = 2.0

    def __iter__(self):
        _warnings.warn(
            "tuple-unpacking a PipelineSpec is deprecated; read "
            "spec.placement / spec.ordering, or compile through the "
            "repro.api facade",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter((self.placement, self.ordering))

    @property
    def method(self) -> str:
        """The flow label, e.g. ``"qaim+ic"``."""
        return f"{self.placement}+{self.ordering}"

    def replace(self, **changes) -> "PipelineSpec":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Content hash of the spec — what cache keys use when a spec is
        passed directly instead of a registered method name.  Field-order
        independent; two content-equal specs always fingerprint the same."""
        payload = {
            k: (repr(v) if isinstance(v, float) else v)
            for k, v in dataclasses.asdict(self).items()
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the pipeline runner
# ----------------------------------------------------------------------
class Pipeline:
    """An ordered pass list with per-pass instrumentation.

    Running a pipeline executes each pass against the shared context and
    appends one :class:`PassRecord` per pass to ``context.trace``: wall
    time, SWAPs inserted, and the depth/gate-count deltas of the working
    circuit.  Depth is only recomputed when a pass changed the circuit's
    length, keeping instrumentation off the hot path for passes that don't
    touch the circuit.
    """

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline") -> None:
        self.passes = list(passes)
        self.name = name

    def run(self, context: PassContext) -> PassContext:
        """Execute every pass in order; returns the same context."""
        depth_before = 0
        gates_before = 0
        for step in self.passes:
            start = time.perf_counter()
            swaps_before = context.swap_count
            step.run(context)
            if context.circuit is not None:
                gates_after = len(context.circuit)
                depth_after = (
                    context.circuit.depth()
                    if gates_after != gates_before
                    else depth_before
                )
            else:
                gates_after = depth_after = 0
            elapsed = time.perf_counter() - start
            context.trace.append(
                PassRecord(
                    name=step.name,
                    seconds=elapsed,
                    swaps=context.swap_count - swaps_before,
                    depth_delta=depth_after - depth_before,
                    gate_delta=gates_after - gates_before,
                    info=dict(getattr(step, "info", {}) or {}),
                )
            )
            depth_before, gates_before = depth_after, gates_after
        return context


def make_router(router: str, target, metric: str = "hop"):
    """Instantiate a backend router by name (``"layered"``/``"sabre"``).

    Args:
        router: ``"layered"`` or ``"sabre"``.
        target: A :class:`~repro.hardware.target.Target` (or anything
            :func:`~repro.hardware.target.as_target` coerces — a bare
            coupling graph works).
        metric: Distance metric the router steers by (``"hop"``/``"vic"``).

    Routers share the target's memoized tables: ``metric="hop"`` leaves the
    distance override unset (both backends default to the target's cached
    hop view), and the layered backend routes through the target's
    shortest-path cache.
    """
    target = as_target(target)
    distance_matrix = target.routing_distances(metric)
    if router == "sabre":
        from .sabre import SabreBackend

        return SabreBackend(target.coupling, distance_matrix=distance_matrix)
    return ConventionalBackend(
        target.coupling,
        distance_matrix=distance_matrix,
        path_oracle=target.path_oracle(metric),
    )


# ----------------------------------------------------------------------
# concrete passes
# ----------------------------------------------------------------------
class PlacementPass:
    """Choose the initial logical→physical mapping.

    Wraps one strategy from :data:`repro.compiler.flow.PLACEMENTS`; QAIM
    additionally takes its connectivity-strength ``radius``.
    """

    def __init__(self, strategy: str, qaim_radius: int = 2) -> None:
        self.strategy = strategy
        self.qaim_radius = qaim_radius
        self.name = f"place/{strategy}"
        self.info = {"strategy": strategy}
        if strategy == "qaim":
            self.info["radius"] = qaim_radius

    def run(self, context: PassContext) -> None:
        pairs = context.program.pairs()
        if self.strategy == "qaim":
            from .qaim import QAIMConfig, qaim_placement

            mapping = qaim_placement(
                pairs,
                context.program.num_qubits,
                context.coupling,
                rng=context.rng,
                config=QAIMConfig(radius=self.qaim_radius),
                target=context.target,
            )
        else:
            from .flow import PLACEMENTS

            mapping = PLACEMENTS[self.strategy](
                pairs, context.program.num_qubits, context.coupling, context.rng
            )
        context.mapping = mapping
        context.initial_mapping = mapping.as_dict()


class RandomOrderingPass:
    """NAIVE ordering: an independent random CPHASE order per level.

    Draws exactly one permutation per level from the context rng —
    the same stream :func:`repro.qaoa.circuit_builder.order_edges`
    consumed in the monolithic flow.
    """

    name = "order/random"

    def run(self, context: PassContext) -> None:
        level_gates: List[List[ParamPair]] = []
        for level in range(context.program.p):
            gates = list(context.program.cphase_gates(level))
            if context.rng is not None:
                perm = context.rng.permutation(len(gates))
                gates = [gates[i] for i in perm]
            level_gates.append(gates)
        context.level_gates = level_gates


class IPOrderingPass:
    """IP ordering: one bin-packed parallel order reused for every level."""

    def __init__(self, packing_limit: Optional[int] = None) -> None:
        self.packing_limit = packing_limit
        self.name = "order/ip"
        self.info: dict = {}

    def run(self, context: PassContext) -> None:
        from ..qaoa.circuit_builder import order_edges
        from .ip import parallelize

        ip_result = parallelize(
            context.program.pairs(),
            rng=context.rng,
            packing_limit=self.packing_limit,
        )
        self.info = {"layers": len(ip_result.layers)}
        context.level_gates = [
            order_edges(
                context.program.cphase_gates(level),
                order=ip_result.ordered_pairs,
            )
            for level in range(context.program.p)
        ]


class VICDistancePass:
    """Install the reliability-weighted distance table (VIC), degrading
    to hop distances with a recorded warning when the calibration cannot
    produce a usable table."""

    name = "distance/vic"

    def __init__(self) -> None:
        self.info: dict = {}

    def run(self, context: PassContext) -> None:
        if context.calibration is None:
            raise ValueError("VIC ordering requires calibration data")
        distance_matrix, warnings = context.target.vic_distances()
        context.distance_metric = "vic" if distance_matrix is not None else "hop"
        context.warnings.extend(warnings)
        self.info = {"fallback": distance_matrix is None}


class RoutingPass:
    """Monolithic routing: build the full logical circuit from the ordered
    level gates and compile it once with the chosen backend router."""

    def __init__(self, router: str = "layered") -> None:
        self.router = router
        self.name = f"route/{router}"
        self.info = {"router": router}

    def run(self, context: PassContext) -> None:
        program = context.program
        if context.mapping is None:
            raise ValueError("routing requires a placement (mapping unset)")
        level_gates = context.level_gates
        if level_gates is None:
            level_gates = [
                list(program.cphase_gates(level)) for level in range(program.p)
            ]
        logical = QuantumCircuit(program.num_qubits, name="qaoa")
        for q in range(program.num_qubits):
            logical.h(q)
        for level in range(program.p):
            for a, b, angle in level_gates[level]:
                logical.cphase(angle, a, b)
            for q, angle in program.rz_gates(level):
                logical.rz(angle, q)
            mixer = program.mixer_angle(level)
            for q in range(program.num_qubits):
                logical.rx(mixer, q)
        logical.measure_all()
        backend = make_router(
            self.router, context.target, context.distance_metric
        )
        compiled = backend.compile(logical, context.mapping)
        context.circuit = compiled.circuit
        context.final_mapping = compiled.final_mapping
        context.swap_count += compiled.swap_count


class IncrementalRoutingPass:
    """IC/VIC routing: form layers one at a time against the *current*
    mapping and stitch the partial compilations (Section IV-C).

    The distance table steering both layer formation and SWAP paths comes
    from the context (hop distances when unset, the VIC table when a
    :class:`VICDistancePass` ran earlier).
    """

    def __init__(
        self,
        router: str = "layered",
        packing_limit: Optional[int] = None,
        label: str = "ic",
    ) -> None:
        self.router = router
        self.packing_limit = packing_limit
        self.name = f"route/{label}"
        self.info = {"router": router}

    def run(self, context: PassContext) -> None:
        from .flow import run_incremental_flow
        from .ic import IncrementalCompiler

        if context.mapping is None:
            raise ValueError("routing requires a placement (mapping unset)")
        compiler = IncrementalCompiler(
            context.coupling,
            distance_matrix=context.routing_distances(),
            packing_limit=self.packing_limit,
            rng=context.rng,
            backend=make_router(
                self.router, context.target, context.distance_metric
            ),
        )
        circuit, final_mapping, swap_count = run_incremental_flow(
            context.program, context.mapping, compiler
        )
        context.circuit = circuit
        context.final_mapping = final_mapping
        context.swap_count += swap_count


class CrosstalkPass:
    """Section VI crosstalk sequentialisation: split any layer that
    co-schedules a conflicting coupling pair."""

    name = "crosstalk/sequentialize"

    def __init__(self, conflicts) -> None:
        self.conflicts = list(conflicts)
        self.info = {"conflict_pairs": len(self.conflicts)}

    def run(self, context: PassContext) -> None:
        from .crosstalk import sequentialize_crosstalk

        if context.circuit is None:
            raise ValueError("crosstalk pass requires a compiled circuit")
        context.circuit = sequentialize_crosstalk(
            context.circuit, self.conflicts
        )


class PeepholePass:
    """Optional lowering stage: decompose to the IBM basis and run the
    peephole optimizer (CNOT cancellation at CPHASE/SWAP seams, phase
    merging).  Not part of any paper preset — presets keep the circuit in
    high-level gates; enable via ``PipelineSpec(lower=True)``."""

    name = "lower/peephole"

    def run(self, context: PassContext) -> None:
        from ..circuits.optimize import peephole_optimize

        if context.circuit is None:
            raise ValueError("peephole pass requires a compiled circuit")
        context.circuit = peephole_optimize(
            decompose_to_basis(context.circuit)
        )


# ----------------------------------------------------------------------
# spec -> pipeline
# ----------------------------------------------------------------------
def build_pipeline(
    spec: PipelineSpec,
    crosstalk_conflicts=None,
) -> Pipeline:
    """Assemble the concrete pass list for a declarative spec.

    Stage order mirrors Figure 2: placement, then ordering+routing (a
    single incremental pass for IC/VIC, separate ordering and routing
    passes otherwise), then the optional crosstalk sequentialisation and
    peephole lowering.  The structural methods deviate: ``swap_network``
    replaces routing with the odd/even brick network on the placed
    chain, and ``parity`` is a single pass that re-encodes, places and
    routes the problem itself (there is no logical→physical placement to
    run first).
    """
    if spec.ordering == "parity":
        from .parity import ParityEncodingPass

        passes: List[Pass] = [
            ParityEncodingPass(
                constraint_strength=spec.constraint_strength,
                router=spec.router,
            )
        ]
        if crosstalk_conflicts is not None:
            passes.append(CrosstalkPass(crosstalk_conflicts))
        if spec.lower:
            passes.append(PeepholePass())
        return Pipeline(passes, name=spec.method)
    passes = [
        PlacementPass(spec.placement, qaim_radius=spec.qaim_radius)
    ]
    if spec.ordering == "random":
        passes.append(RandomOrderingPass())
        passes.append(RoutingPass(spec.router))
    elif spec.ordering == "ip":
        passes.append(IPOrderingPass(packing_limit=spec.packing_limit))
        passes.append(RoutingPass(spec.router))
    elif spec.ordering in ("ic", "vic"):
        if spec.ordering == "vic":
            passes.append(VICDistancePass())
        passes.append(
            IncrementalRoutingPass(
                router=spec.router,
                packing_limit=spec.packing_limit,
                label=spec.ordering,
            )
        )
    elif spec.ordering == "swap_network":
        from .swap_network import SwapNetworkPass

        passes.append(SwapNetworkPass())
    else:
        raise ValueError(f"unknown ordering {spec.ordering!r} in spec")
    if crosstalk_conflicts is not None:
        passes.append(CrosstalkPass(crosstalk_conflicts))
    if spec.lower:
        passes.append(PeepholePass())
    return Pipeline(passes, name=spec.method)
