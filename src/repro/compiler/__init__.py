"""Compilation: placements, orderings, backend, flows, metrics."""

from .advanced_placement import reverse_traversal_placement, vqa_placement
from .analysis import CompilationAnalysis, analyze_compiled
from .backend import CompiledCircuit, ConventionalBackend
from .crosstalk import count_conflicts, sequentialize_crosstalk
from .exhaustive import ExhaustiveResult, exhaustive_best_order
from .flow import (
    METHOD_PRESETS,
    ORDERINGS,
    PLACEMENTS,
    ROUTERS,
    CompiledQAOA,
    compile_qaoa,
    compile_spec,
    compile_with_method,
)
from .ic import IncrementalBlockResult, IncrementalCompiler
from .ip import IPResult, fill_single_layer, parallelize
from .mapping import Mapping
from .metrics import CircuitMetrics, measure_compiled, success_probability
from .portfolio import (
    PortfolioEntry,
    PortfolioResult,
    compile_portfolio,
    depth_objective,
    gate_count_objective,
    reliability_objective,
)
from .parity import (
    ParityEncodingPass,
    ParityLayout,
    build_parity_circuit,
    parity_constraint_angle,
    parity_decode_indices,
    parity_field_angle,
)
from .pipeline import (
    Pass,
    PassContext,
    PassRecord,
    Pipeline,
    PipelineSpec,
    build_pipeline,
)
from .registry import (
    available_methods,
    get_method,
    register_method,
    unregister_method,
)
from .placement import (
    greedy_e_placement,
    greedy_v_placement,
    random_placement,
    trivial_placement,
)
from .qaim import QAIMConfig, qaim_placement
from .routing import RoutingResult, route_pair
from .sabre import SabreBackend
from .serialize import from_json, to_json
from .swap_network import (
    SwapNetworkPass,
    chain_for_mapping,
    find_linear_chain,
    linear_placement,
    network_meetings,
)
from .vic import VariationAwareCompiler, vic_compiler

__all__ = [
    "Mapping",
    "ConventionalBackend",
    "SabreBackend",
    "CompiledCircuit",
    "route_pair",
    "RoutingResult",
    "trivial_placement",
    "random_placement",
    "greedy_v_placement",
    "greedy_e_placement",
    "reverse_traversal_placement",
    "vqa_placement",
    "qaim_placement",
    "QAIMConfig",
    "parallelize",
    "fill_single_layer",
    "IPResult",
    "IncrementalCompiler",
    "IncrementalBlockResult",
    "VariationAwareCompiler",
    "vic_compiler",
    "compile_qaoa",
    "compile_spec",
    "compile_with_method",
    "CompiledQAOA",
    "METHOD_PRESETS",
    "PLACEMENTS",
    "ORDERINGS",
    "ROUTERS",
    "register_method",
    "unregister_method",
    "available_methods",
    "get_method",
    "SwapNetworkPass",
    "linear_placement",
    "find_linear_chain",
    "chain_for_mapping",
    "network_meetings",
    "ParityEncodingPass",
    "ParityLayout",
    "build_parity_circuit",
    "parity_field_angle",
    "parity_constraint_angle",
    "parity_decode_indices",
    "Pass",
    "PassContext",
    "PassRecord",
    "Pipeline",
    "PipelineSpec",
    "build_pipeline",
    "CircuitMetrics",
    "measure_compiled",
    "success_probability",
    "sequentialize_crosstalk",
    "count_conflicts",
    "exhaustive_best_order",
    "ExhaustiveResult",
    "to_json",
    "from_json",
    "compile_portfolio",
    "PortfolioResult",
    "PortfolioEntry",
    "depth_objective",
    "gate_count_objective",
    "reliability_objective",
    "analyze_compiled",
    "CompilationAnalysis",
]
