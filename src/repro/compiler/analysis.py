"""Compilation analysis: where did the routing cost go?

The paper's metrics (depth, gates, success probability) say *how good* a
compiled circuit is; this module explains *why*, which is what one needs to
choose between methods or debug a bad mapping:

* **routing overhead** — the fraction of native gates that exist only to
  move qubits (every SWAP is pure overhead: 3 CNOTs that compute nothing);
* **per-qubit SWAP traffic** — which physical qubits churn (a hot corner
  suggests a bad initial placement, QAIM's target failure mode);
* **mapping displacement** — how far each logical qubit ends from where it
  started (IC thrives on displacement; NAIVE suffers from it);
* **layer occupancy** — concurrency histogram of the high-level circuit
  (what IP maximises);
* **coupling utilisation** — which device edges carry the two-qubit load
  (feeds crosstalk planning and VIC's reliability reasoning).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..circuits import QuantumCircuit, asap_layers, decompose_to_basis

__all__ = ["CompilationAnalysis", "analyze_compiled"]

Edge = Tuple[int, int]


@dataclasses.dataclass
class CompilationAnalysis:
    """Structural breakdown of one compiled result.

    Attributes:
        total_native_gates: Gates after lowering to the IBM basis.
        routing_native_gates: Native gates attributable to inserted SWAPs.
        routing_overhead: ``routing_native_gates / total_native_gates``.
        swap_traffic: Physical qubit -> number of SWAPs touching it.
        displacement: Logical qubit -> hop distance between its initial and
            final physical homes.
        layer_occupancy: Histogram {gates-per-layer: layer count} over the
            high-level circuit's ASAP layers.
        edge_utilisation: Coupling -> number of two-qubit gates executed on
            it (SWAPs included).
        mean_concurrency: Average gates per layer.
    """

    total_native_gates: int
    routing_native_gates: int
    routing_overhead: float
    swap_traffic: Dict[int, int]
    displacement: Dict[int, int]
    layer_occupancy: Dict[int, int]
    edge_utilisation: Dict[Edge, int]
    mean_concurrency: float

    def hottest_qubits(self, top: int = 3) -> List[Tuple[int, int]]:
        """The ``top`` physical qubits by SWAP traffic."""
        ranked = sorted(
            self.swap_traffic.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [kv for kv in ranked[:top] if kv[1] > 0]

    def hottest_edges(self, top: int = 3) -> List[Tuple[Edge, int]]:
        """The ``top`` couplings by two-qubit gate count."""
        ranked = sorted(
            self.edge_utilisation.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [kv for kv in ranked[:top] if kv[1] > 0]


def analyze_compiled(compiled) -> CompilationAnalysis:
    """Analyse a compiled result (CompiledQAOA / CompiledCircuit).

    Args:
        compiled: Anything exposing ``circuit`` (physical high-level
            circuit), ``coupling``, ``initial_mapping`` and
            ``final_mapping``.
    """
    circuit: QuantumCircuit = compiled.circuit
    coupling = compiled.coupling

    swap_traffic: Dict[int, int] = {
        q: 0 for q in range(coupling.num_qubits)
    }
    edge_utilisation: Dict[Edge, int] = {e: 0 for e in coupling.edges}
    swap_count = 0
    for inst in circuit:
        if not inst.is_two_qubit:
            continue
        edge = (min(inst.qubits), max(inst.qubits))
        edge_utilisation[edge] = edge_utilisation.get(edge, 0) + 1
        if inst.name == "swap":
            swap_count += 1
            for q in inst.qubits:
                swap_traffic[q] += 1

    native = decompose_to_basis(circuit)
    total_native = native.gate_count()
    # Each SWAP lowers to exactly 3 CNOTs (no single-qubit dressing).
    routing_native = 3 * swap_count

    displacement = {}
    for logical, start in compiled.initial_mapping.items():
        end = compiled.final_mapping[logical]
        displacement[logical] = (
            0 if start == end else coupling.distance(start, end)
        )

    layers = asap_layers(circuit)
    occupancy: Dict[int, int] = {}
    for layer in layers:
        occupancy[len(layer)] = occupancy.get(len(layer), 0) + 1
    mean_concurrency = (
        sum(len(layer) for layer in layers) / len(layers) if layers else 0.0
    )

    return CompilationAnalysis(
        total_native_gates=total_native,
        routing_native_gates=routing_native,
        routing_overhead=(
            routing_native / total_native if total_native else 0.0
        ),
        swap_traffic=swap_traffic,
        displacement=displacement,
        layer_occupancy=occupancy,
        edge_utilisation=edge_utilisation,
        mean_concurrency=mean_concurrency,
    )
