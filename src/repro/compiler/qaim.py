"""QAIM: integrated Qubit Allocation and Initial Mapping (Section IV-A).

QAIM fuses topology selection and initial placement into one pass driven by
two profiles:

* the **hardware profile** — each physical qubit's *connectivity strength*
  (distinct qubits within ``radius`` hops, Figure 3(b));
* the **program profile** — CPHASE operations per logical qubit
  (Figure 3(c)).

Procedure (Steps 1-4 of the paper):

1. Sort logical qubits by CPHASE count, descending.
2. Place the first on the physical qubit with the highest connectivity
   strength.
3. For each subsequent logical qubit: if none of its logical neighbours is
   placed yet, use the free physical qubit with the highest strength;
   otherwise consider the free physical neighbours of the placed
   neighbours' homes and pick the one maximising
   ``strength / cumulative hop distance to the placed neighbours``.
4. Repeat until every logical qubit is placed.

Ties break randomly when an ``rng`` is supplied (the paper picks qubit-7 vs
qubit-12 "randomly" in Example 1), or toward the lowest physical index for
deterministic runs.

The cost metric is pluggable (``weighted=True`` scales each neighbour's
distance by the number of interactions with it), implementing the paper's
note that the metric "can be modified ... to apply QAIM effectively in any
arbitrary quantum circuit mapping procedure".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..hardware.coupling import CouplingGraph
from ..hardware.profiling import program_profile
from .mapping import Mapping

__all__ = ["qaim_placement", "QAIMConfig"]

Pair = Tuple[int, int]


class QAIMConfig:
    """Tunables for QAIM.

    Attributes:
        radius: Neighbourhood radius for connectivity strength (paper
            default 2 = first + second neighbours; "for larger qubit
            architectures, we may include higher degree neighbours").
        weighted: Weigh each placed neighbour's distance by the interaction
            multiplicity (off for QAOA, where every pair interacts once per
            level; useful for arbitrary circuits).
    """

    def __init__(self, radius: int = 2, weighted: bool = False) -> None:
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self.radius = radius
        self.weighted = weighted


def _logical_neighbours(pairs: Sequence[Pair], num_logical: int) -> Dict[int, Dict[int, int]]:
    """Adjacency (with multiplicity) of the logical interaction graph."""
    adj: Dict[int, Dict[int, int]] = {q: {} for q in range(num_logical)}
    for a, b in pairs:
        adj[a][b] = adj[a].get(b, 0) + 1
        adj[b][a] = adj[b].get(a, 0) + 1
    return adj


def _argmax_with_ties(
    candidates: Sequence[int],
    score,
    rng: Optional[np.random.Generator],
) -> int:
    """Max-scoring candidate; ties break via rng (or lowest index)."""
    best_score = None
    best: List[int] = []
    for c in candidates:
        s = score(c)
        if best_score is None or s > best_score + 1e-12:
            best_score, best = s, [c]
        elif abs(s - best_score) <= 1e-12:
            best.append(c)
    if rng is not None and len(best) > 1:
        return int(best[int(rng.integers(len(best)))])
    return min(best)


def qaim_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
    config: Optional[QAIMConfig] = None,
    target=None,
) -> Mapping:
    """Run the QAIM procedure and return the initial mapping.

    Args:
        pairs: Logical endpoints of every CPHASE gate in the circuit.
        num_logical: Number of logical qubits (>= max index in ``pairs``).
        coupling: Target device.
        rng: Optional generator for random tie-breaks.
        config: Radius / weighting knobs (defaults to the paper's).
        target: Optional :class:`~repro.hardware.target.Target` whose
            memoized connectivity profile and hop view are used instead
            of recomputing them from ``coupling``.

    Returns:
        A :class:`~repro.compiler.mapping.Mapping` placing every logical
        qubit.
    """
    if num_logical > coupling.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits do not fit on "
            f"{coupling.num_qubits}-qubit device {coupling.name}"
        )
    config = config or QAIMConfig()
    if target is not None:
        strength = target.connectivity_profile(radius=config.radius)
        hop = target.hop_distances()
    else:
        strength = coupling.connectivity_profile(radius=config.radius)
        hop = coupling.distance_matrix()
    profile = program_profile(pairs)
    adjacency = _logical_neighbours(pairs, num_logical)

    # Step 1: heaviest logical qubits first.
    order = sorted(range(num_logical), key=lambda q: (-profile.get(q, 0), q))
    mapping = Mapping({}, coupling.num_qubits)

    for logical in order:
        free = [
            p for p in range(coupling.num_qubits) if mapping.logical_at(p) is None
        ]
        placed_neighbours = [
            (n, mult)
            for n, mult in adjacency[logical].items()
            if mapping.is_placed(n)
        ]
        if not placed_neighbours:
            # Step 2 / first branch of Step 3: pure connectivity strength.
            choice = _argmax_with_ties(free, lambda p: strength[p], rng)
            mapping.place(logical, choice)
            continue

        anchor_physical = [
            (mapping.physical(n), mult) for n, mult in placed_neighbours
        ]
        candidates: Set[int] = set()
        for anchor, _ in anchor_physical:
            candidates.update(
                p
                for p in coupling.neighbours(anchor)
                if mapping.logical_at(p) is None
            )
        pool = sorted(candidates) if candidates else free

        def cost(p: int) -> float:
            distance = 0.0
            for anchor, mult in anchor_physical:
                d = hop[p, anchor]
                distance += d * (mult if config.weighted else 1.0)
            if distance <= 0.0:  # cannot happen for free p, defensive
                distance = 1e-9
            return strength[p] / distance

        choice = _argmax_with_ties(pool, cost, rng)
        mapping.place(logical, choice)

    return mapping
