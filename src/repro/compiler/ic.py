"""IC: Incremental Compilation (Section IV-C).

IC exploits a fact IP ignores: every SWAP the backend inserts *changes the
logical-to-physical mapping*, so after compiling one layer, some of the
remaining CPHASE pairs have drifted closer together.  IC therefore forms
layers one at a time:

1. Sort the remaining CPHASE gates ascending by the *current* physical
   distance of their endpoints ("Q. Dist." in Figure 5); ties random.
2. Greedy-fill a single layer from that sorted list (first-fit bins, same
   as IP), compile just that partial circuit with the backend, and record
   the post-SWAP mapping.
3. Repeat from the new mapping until no gates remain; the compiled partial
   circuits are stitched in order.

The distance matrix is pluggable: hop distances give IC, the
reliability-weighted matrix of Figure 6(d) gives VIC (see
:mod:`repro.compiler.vic`).  The ``packing_limit`` knob caps gates per layer
for the Figure 12 study.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..hardware.coupling import CouplingGraph
from .backend import ConventionalBackend
from .ip import fill_single_layer
from .mapping import Mapping

__all__ = ["IncrementalCompiler", "IncrementalBlockResult"]

ParamPair = Tuple[int, int, float]  # (logical_a, logical_b, gamma)


@dataclasses.dataclass
class IncrementalBlockResult:
    """Bookkeeping for one incrementally compiled CPHASE block.

    Attributes:
        swap_count: SWAPs inserted across all layers of the block.
        layers: The CPHASE pairs chosen for each layer, in order.
    """

    swap_count: int
    layers: List[List[Tuple[int, int]]]

    @property
    def num_layers(self) -> int:
        """Number of layers the block was split into."""
        return len(self.layers)


class IncrementalCompiler:
    """Layer-at-a-time compiler for commuting CPHASE blocks.

    Args:
        coupling: Target device.
        distance_matrix: Matrix used both to sort gates by endpoint distance
            and to steer SWAP paths.  ``None`` means hop distances (IC);
            pass a reliability-weighted matrix for VIC.
        packing_limit: Optional max CPHASE gates per layer (Figure 12).
        rng: Random generator for distance-tie shuffling; ``None`` keeps
            input order on ties (deterministic).
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        distance_matrix: Optional[np.ndarray] = None,
        packing_limit: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        backend=None,
    ) -> None:
        self.coupling = coupling
        self.distance_matrix = (
            distance_matrix
            if distance_matrix is not None
            else coupling.distance_matrix()
        )
        self.packing_limit = packing_limit
        self.rng = rng
        # Any object with ConventionalBackend's ``continue_compile``
        # interface works here — e.g. the SABRE router — reflecting the
        # paper's claim that IC composes with any conventional compiler.
        self.backend = (
            backend
            if backend is not None
            else ConventionalBackend(coupling, distance_matrix=distance_matrix)
        )

    # ------------------------------------------------------------------
    def _sorted_by_distance(
        self, gates: Sequence[ParamPair], mapping: Mapping
    ) -> List[ParamPair]:
        """Step 1: ascending current-physical-distance order, ties random."""
        gates = list(gates)
        if self.rng is not None and len(gates) > 1:
            perm = self.rng.permutation(len(gates))
            gates = [gates[i] for i in perm]
        dist = self.distance_matrix

        def q_dist(gate: ParamPair) -> float:
            pa, pb = mapping.physical(gate[0]), mapping.physical(gate[1])
            return float(dist[pa, pb])

        gates.sort(key=q_dist)
        return gates

    def compile_block(
        self,
        gates: Sequence[ParamPair],
        mapping: Mapping,
        out: QuantumCircuit,
        max_iterations: int = 100000,
    ) -> IncrementalBlockResult:
        """Incrementally compile one commuting CPHASE block.

        Appends routed gates to ``out`` and mutates ``mapping`` in place
        (the block's final mapping becomes the start of whatever follows —
        this is the "stitching" of Figure 2).

        Args:
            gates: ``(logical_a, logical_b, gamma)`` triples of the block.
            mapping: Current placement; every endpoint must be placed.
            out: Physical circuit under construction.
            max_iterations: Safety bound on layer-formation loops.
        """
        remaining = list(gates)
        swap_count = 0
        layers: List[List[Tuple[int, int]]] = []
        iterations = 0
        while remaining:
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError("IC layer formation failed to converge")
            ordered = self._sorted_by_distance(remaining, mapping)
            pair_list = [(a, b) for a, b, _ in ordered]
            layer_pairs, _ = fill_single_layer(
                pair_list, packing_limit=self.packing_limit
            )
            chosen = set()
            layer_gates: List[ParamPair] = []
            for gate in ordered:
                key = (gate[0], gate[1])
                if key in set(layer_pairs) and key not in chosen:
                    layer_gates.append(gate)
                    chosen.add(key)
            if not layer_gates:  # packing limit >= 1 guarantees progress
                raise RuntimeError("IC formed an empty layer")
            partial = QuantumCircuit(
                1 + max(max(a, b) for a, b, _ in layer_gates),
                name="ic_partial",
            )
            for a, b, gamma in layer_gates:
                partial.cphase(gamma, a, b)
            swap_count += self.backend.continue_compile(partial, mapping, out)
            layers.append([(a, b) for a, b, _ in layer_gates])
            remaining = _remove_once(remaining, layer_gates)
        return IncrementalBlockResult(swap_count=swap_count, layers=layers)


def _remove_once(
    gates: List[ParamPair], to_remove: Sequence[ParamPair]
) -> List[ParamPair]:
    """Remove each gate in ``to_remove`` exactly once (multiset semantics —
    multi-level or weighted problems can repeat a pair)."""
    pool = list(gates)
    for gate in to_remove:
        pool.remove(gate)
    return pool
