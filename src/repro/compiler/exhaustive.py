"""Exhaustive gate-order search — an optimality reference for tiny circuits.

The paper argues that "finding the best-ordered circuit is a difficult
problem and does not scale well with circuit size" (and compares against a
temporal planner that needs ~70 s for 8-qubit circuits).  For *tiny*
instances, though, we can simply try every permutation of the commuting
CPHASE gates through the conventional backend and keep the best result.
That gives the test suite and the Section VI bench an optimality yardstick:
how close do IP/IC land to the true optimum of the ordering problem, at a
vanishing fraction of the cost?

Complexity is factorial — :func:`exhaustive_best_order` refuses more than
``max_gates`` gates (default 8, i.e. at most 40320 compilations).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuits import QuantumCircuit, decompose_to_basis
from ..hardware.coupling import CouplingGraph
from .backend import CompiledCircuit, ConventionalBackend
from .mapping import Mapping

__all__ = ["ExhaustiveResult", "exhaustive_best_order"]

Pair = Tuple[int, int]


@dataclasses.dataclass
class ExhaustiveResult:
    """Best ordering found by brute force.

    Attributes:
        order: The optimal CPHASE order.
        compiled: The corresponding compiled circuit.
        objective: Objective value of the winner (lower = better).
        orders_tried: Number of permutations evaluated.
    """

    order: List[Pair]
    compiled: CompiledCircuit
    objective: float
    orders_tried: int


def _default_objective(compiled: CompiledCircuit) -> float:
    """Depth-first, gate-count-tiebroken objective on the native circuit."""
    native = decompose_to_basis(compiled.circuit)
    return native.depth() * 10_000 + native.gate_count()


def exhaustive_best_order(
    pairs: Sequence[Pair],
    coupling: CouplingGraph,
    mapping: Mapping,
    gamma: float = 0.5,
    objective: Optional[Callable[[CompiledCircuit], float]] = None,
    max_gates: int = 8,
) -> ExhaustiveResult:
    """Try every CPHASE permutation through the backend; keep the best.

    Args:
        pairs: The commuting CPHASE endpoints.
        coupling: Target device.
        mapping: Fixed initial mapping (shared by every permutation, so the
            search isolates the *ordering* dimension the paper studies).
        gamma: CPHASE angle (irrelevant to depth/gates; kept explicit).
        objective: Scoring function over compiled circuits (lower = better);
            defaults to native depth with gate-count tie-break.
        max_gates: Safety bound on the factorial search.

    Returns:
        An :class:`ExhaustiveResult` with the optimal order.
    """
    pairs = list(pairs)
    if len(pairs) > max_gates:
        raise ValueError(
            f"{len(pairs)} gates means {len(pairs)}! permutations; refusing "
            f"above max_gates={max_gates}"
        )
    if not pairs:
        raise ValueError("need at least one CPHASE gate")
    objective = objective or _default_objective
    backend = ConventionalBackend(coupling)
    num_qubits = 1 + max(q for pair in pairs for q in pair)

    best: Optional[ExhaustiveResult] = None
    tried = 0
    seen_orders = set()
    for perm in itertools.permutations(range(len(pairs))):
        order = tuple(pairs[i] for i in perm)
        if order in seen_orders:  # duplicate pairs make permutations collide
            continue
        seen_orders.add(order)
        tried += 1
        circuit = QuantumCircuit(num_qubits)
        for a, b in order:
            circuit.cphase(gamma, a, b)
        compiled = backend.compile(circuit, mapping)
        score = objective(compiled)
        if best is None or score < best.objective:
            best = ExhaustiveResult(
                order=list(order),
                compiled=compiled,
                objective=score,
                orders_tried=tried,
            )
    assert best is not None
    best.orders_tried = tried
    return best
