"""Additional initial-mapping strategies from the paper's related work.

Section III surveys two further placement ideas that QAIM is positioned
against; both are implemented here so comparisons and extensions are
possible:

* :func:`reverse_traversal_placement` — Li et al.'s (ASPLOS'19) reverse
  traversal: start from a random mapping, compile the circuit, then compile
  its *reverse* starting from the final mapping, and iterate.  Because
  quantum circuits are reversible, the reverse circuit's final mapping is a
  valid (and progressively better) initial mapping for the forward circuit.
  The paper notes this "showed significant performance improvement at the
  expense of higher compilation time due to repeated compilations" — the
  trade QAIM avoids.
* :func:`vqa_placement` — Tannu & Qureshi's Variation-aware Qubit
  Allocation: select physical qubits maximising *cumulative link
  reliability* rather than raw connectivity, using calibration data.  This
  is the allocation-side counterpart of VIC's routing-side awareness.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..hardware.calibration import Calibration
from ..hardware.coupling import CouplingGraph
from ..hardware.profiling import program_profile
from .backend import ConventionalBackend
from .mapping import Mapping

__all__ = ["reverse_traversal_placement", "vqa_placement"]

Pair = Tuple[int, int]


def _pairs_to_circuit(pairs: Sequence[Pair], num_logical: int) -> QuantumCircuit:
    """A CPHASE-only proxy circuit for mapping purposes (angles irrelevant)."""
    qc = QuantumCircuit(max(num_logical, 1))
    for a, b in pairs:
        qc.cphase(0.5, a, b)
    return qc


def reverse_traversal_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    coupling: CouplingGraph,
    rng: Optional[np.random.Generator] = None,
    traversals: int = 3,
) -> Mapping:
    """Reverse-traversal initial mapping (Li et al., ASPLOS'19 style).

    Args:
        pairs: Logical endpoints of the circuit's two-qubit gates.
        num_logical: Number of logical qubits.
        coupling: Target device.
        rng: Seeds the random starting mapping.
        traversals: Number of forward+reverse refinement rounds (the paper
            reports 3 reverse traversals sufficing).

    Returns:
        The refined initial :class:`~repro.compiler.mapping.Mapping`.
    """
    if num_logical > coupling.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits do not fit on "
            f"{coupling.num_qubits}-qubit device {coupling.name}"
        )
    if traversals < 1:
        raise ValueError(f"traversals must be >= 1, got {traversals}")
    rng = rng if rng is not None else np.random.default_rng()
    forward = _pairs_to_circuit(pairs, num_logical)
    reverse = forward.reversed_ops()
    backend = ConventionalBackend(coupling)

    mapping = Mapping.random(num_logical, coupling.num_qubits, rng)
    for _ in range(traversals):
        # Forward pass: where do the qubits end up?
        result = backend.compile(forward, mapping)
        # Reverse pass starting there: its final mapping is a good initial
        # mapping for the forward circuit.
        result = backend.compile(reverse, Mapping(result.final_mapping, coupling.num_qubits))
        mapping = Mapping(result.final_mapping, coupling.num_qubits)
    return mapping


def vqa_placement(
    pairs: Sequence[Pair],
    num_logical: int,
    calibration: Calibration,
    rng: Optional[np.random.Generator] = None,
    target=None,
) -> Mapping:
    """Variation-aware Qubit Allocation (Tannu & Qureshi style).

    Greedy analogue of QAIM where a physical qubit's desirability is the
    *cumulative success rate of its couplings* instead of its connectivity
    strength: heavily used logical qubits land on physical qubits whose
    links are reliable, and logical neighbours are drawn onto reliable
    nearby qubits.

    Args:
        pairs: Logical endpoints of the circuit's CPHASE gates.
        num_logical: Number of logical qubits.
        calibration: Device calibration (defines both topology and
            reliability).
        rng: Optional tie-break randomiser.
        target: Optional :class:`~repro.hardware.target.Target` sharing
            its memoized hop view (defaults to the coupling's cached one).
    """
    coupling = calibration.coupling
    if num_logical > coupling.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits do not fit on "
            f"{coupling.num_qubits}-qubit device {coupling.name}"
        )
    reliability: Dict[int, float] = {
        q: sum(
            calibration.cnot_success(q, n) for n in coupling.neighbours(q)
        )
        for q in range(coupling.num_qubits)
    }
    hop = (
        target.hop_distances() if target is not None
        else coupling.distance_matrix()
    )
    profile = program_profile(pairs)
    adjacency: Dict[int, set] = {q: set() for q in range(num_logical)}
    for a, b in pairs:
        adjacency[a].add(b)
        adjacency[b].add(a)

    order = sorted(range(num_logical), key=lambda q: (-profile.get(q, 0), q))
    mapping = Mapping({}, coupling.num_qubits)
    for logical in order:
        free = [
            p
            for p in range(coupling.num_qubits)
            if mapping.logical_at(p) is None
        ]
        anchors = [
            mapping.physical(n)
            for n in adjacency[logical]
            if mapping.is_placed(n)
        ]
        if anchors:
            candidates = sorted(
                {
                    p
                    for a in anchors
                    for p in coupling.neighbours(a)
                    if mapping.logical_at(p) is None
                }
            ) or free

            def score(p: int) -> float:
                distance = sum(hop[p, a] for a in anchors)
                return reliability[p] / max(distance, 1e-9)

        else:
            candidates = free

            def score(p: int) -> float:
                return reliability[p]

        best_score = max(score(p) for p in candidates)
        ties = [p for p in candidates if abs(score(p) - best_score) <= 1e-12]
        if rng is not None and len(ties) > 1:
            choice = int(ties[int(rng.integers(len(ties)))])
        else:
            choice = min(ties)
        mapping.place(logical, choice)
    return mapping
