"""Integration: the Figure 1 motivating example, end to end.

Figure 1 makes two points: (1) on ideal hardware, re-ordering the commuting
CPHASE gates of the K4 QAOA circuit cuts the time steps from 9 to 6; and
(2) on a 4-qubit *linear* device the order of the (equally packed) CPHASE
layers changes how many SWAPs the backend must insert.  Point (1) lives in
tests/unit/test_dag.py; this module exercises point (2) plus the IC/IP
flows' ability to find the good orderings automatically.
"""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.compiler import (
    ConventionalBackend,
    Mapping,
    compile_with_method,
    parallelize,
)
from repro.hardware import linear_device
from repro.qaoa import MaxCutProblem

K4_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]


def _cphase_block(order):
    qc = QuantumCircuit(4)
    for a, b in order:
        qc.cphase(0.5, a, b)
    return qc


class TestLayerOrderAffectsSwaps:
    """Figure 1(d): with initial mapping q_i -> p_i on a 4-qubit line,
    different orders of the three packed CPHASE layers need different
    numbers of SWAPs."""

    LAYER_1 = [(0, 1), (2, 3)]
    LAYER_2 = [(0, 2), (1, 3)]
    LAYER_3 = [(0, 3), (1, 2)]

    def _swaps_for(self, layer_order):
        order = [pair for layer in layer_order for pair in layer]
        backend = ConventionalBackend(linear_device(4))
        result = backend.compile(_cphase_block(order), Mapping.trivial(4, 4))
        result.validate()
        return result.swap_count

    def test_all_orders_compile_compliantly(self):
        import itertools

        layers = [self.LAYER_1, self.LAYER_2, self.LAYER_3]
        swap_counts = [
            self._swaps_for(perm)
            for perm in itertools.permutations(layers)
        ]
        assert all(count >= 2 for count in swap_counts)

    def test_layer_order_changes_swap_count(self):
        import itertools

        layers = [self.LAYER_1, self.LAYER_2, self.LAYER_3]
        counts = {
            self._swaps_for(perm)
            for perm in itertools.permutations(layers)
        }
        # The paper's point: some orders are strictly cheaper than others.
        assert len(counts) > 1


class TestFlowsRecoverTheGoodOrdering:
    def test_ip_packs_k4_into_three_layers(self):
        result = parallelize(K4_EDGES)
        assert result.num_layers == 3  # MOQ = 3, achieved

    def test_ip_flow_reaches_minimal_depth_on_full_connectivity(self):
        from repro.hardware import fully_connected_device

        problem = MaxCutProblem(4, K4_EDGES)
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program,
            fully_connected_device(4),
            "ip",
            rng=np.random.default_rng(0),
        )
        # High-level depth: H + 3 CPHASE layers + RX + measure = 6, the
        # paper's circ-2 execution time.
        assert compiled.circuit.depth() == 6
        assert compiled.swap_count == 0

    def test_ic_beats_or_matches_naive_on_linear_hardware(self):
        problem = MaxCutProblem(4, K4_EDGES)
        program = problem.to_program([0.5], [0.3])
        naive_swaps = []
        ic_swaps = []
        for seed in range(10):
            naive = compile_with_method(
                program,
                linear_device(4),
                "naive",
                rng=np.random.default_rng(seed),
            )
            ic = compile_with_method(
                program,
                linear_device(4),
                "ic",
                rng=np.random.default_rng(seed),
            )
            naive_swaps.append(naive.swap_count)
            ic_swaps.append(ic.swap_count)
        assert np.mean(ic_swaps) <= np.mean(naive_swaps)
