"""Pipeline ↔ seed-flow equivalence (the refactor's safety net).

The pass pipeline must be a pure re-organisation: for a fixed rng seed,
every ``METHOD_PRESETS`` entry has to produce the *gate-for-gate identical*
circuit the pre-pipeline monolithic flow produced.  The reference below is
that flow, re-implemented from the same primitives the old
``_compile_monolithic``/``_compile_incremental`` helpers used — placement
functions, ``parallelize``/``build_qaoa_circuit``, the backend routers and
the incremental compiler — consuming the rng in the exact same order.
"""

import numpy as np
import pytest

from repro.compiler import compile_with_method
from repro.compiler.backend import ConventionalBackend
from repro.compiler.flow import METHOD_PRESETS, PLACEMENTS, run_incremental_flow
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.ip import parallelize
from repro.compiler.qaim import QAIMConfig, qaim_placement
from repro.compiler.sabre import SabreBackend
from repro.compiler.vic import resolve_vic_distances
from repro.hardware import (
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    melbourne_calibration,
    random_calibration,
)
from repro.qaoa import MaxCutProblem
from repro.qaoa.circuit_builder import build_qaoa_circuit

PROBLEM = MaxCutProblem(
    10,
    [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8),
     (8, 9), (0, 9), (0, 5), (2, 7), (1, 8), (3, 9)],
)


def _make_router(router, coupling, distance_matrix=None):
    if router == "sabre":
        return SabreBackend(coupling, distance_matrix=distance_matrix)
    return ConventionalBackend(coupling, distance_matrix=distance_matrix)


def reference_compile(
    program,
    coupling,
    method,
    rng,
    calibration=None,
    packing_limit=None,
    router="layered",
):
    """The pre-pipeline flow, from primitives, with identical rng order."""
    preset = METHOD_PRESETS[method]
    placement, ordering = preset.placement, preset.ordering
    pairs = program.pairs()
    if placement == "qaim":
        mapping = qaim_placement(
            pairs, program.num_qubits, coupling,
            rng=rng, config=QAIMConfig(radius=2),
        )
    else:
        mapping = PLACEMENTS[placement](
            pairs, program.num_qubits, coupling, rng
        )
    initial = mapping.as_dict()
    warnings = []
    if ordering in ("random", "ip"):
        if ordering == "ip":
            ip_result = parallelize(
                pairs, rng=rng, packing_limit=packing_limit
            )
            logical = build_qaoa_circuit(
                program, edge_orders=[ip_result.ordered_pairs] * program.p
            )
        else:
            logical = build_qaoa_circuit(program, rng=rng)
        compiled = _make_router(router, coupling).compile(logical, mapping)
        circuit = compiled.circuit
        final = compiled.final_mapping
        swaps = compiled.swap_count
    else:
        distance_matrix = None
        if ordering == "vic":
            distance_matrix, warnings = resolve_vic_distances(calibration)
        compiler = IncrementalCompiler(
            coupling,
            distance_matrix=distance_matrix,
            packing_limit=packing_limit,
            rng=rng,
            backend=_make_router(router, coupling, distance_matrix),
        )
        circuit, final, swaps = run_incremental_flow(
            program, mapping, compiler
        )
    return circuit, initial, final, swaps, warnings


def _calibration_for(coupling, method):
    if method != "vic":
        return None
    if coupling.name == "ibmq_16_melbourne":
        return melbourne_calibration()
    return random_calibration(coupling, rng=np.random.default_rng(7))


DEVICES = [ibmq_20_tokyo, ibmq_16_melbourne]

# The seed-flow reference predates the structural methods (swap_network,
# parity) — those have no monolithic counterpart and are covered by the
# verifier plans plus tests/integration/test_structural_methods.py.
CLASSIC_METHODS = sorted(
    name
    for name, preset in METHOD_PRESETS.items()
    if preset.ordering in ("random", "ip", "ic", "vic")
)


@pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.__name__)
@pytest.mark.parametrize("method", CLASSIC_METHODS)
@pytest.mark.parametrize("seed", [0, 11])
def test_preset_matches_seed_flow(device, method, seed):
    coupling = device()
    calibration = _calibration_for(coupling, method)
    program = PROBLEM.to_program([0.7], [0.35])

    ref = reference_compile(
        program, coupling, method,
        np.random.default_rng(seed), calibration=calibration,
    )
    compiled = compile_with_method(
        program, coupling, method,
        calibration=calibration, rng=np.random.default_rng(seed),
    )

    circuit, initial, final, swaps, warnings = ref
    assert compiled.circuit.instructions == circuit.instructions
    assert compiled.initial_mapping == initial
    assert compiled.final_mapping == final
    assert compiled.swap_count == swaps
    assert compiled.warnings == warnings


@pytest.mark.parametrize("method", ["naive", "ip", "ic"])
def test_preset_matches_seed_flow_sabre(method):
    """The equivalence holds for the SABRE router too."""
    coupling = ibmq_20_tokyo()
    program = PROBLEM.to_program([0.7, 0.4], [0.35, 0.2])

    ref = reference_compile(
        program, coupling, method, np.random.default_rng(3), router="sabre"
    )
    compiled = compile_with_method(
        program, coupling, method,
        rng=np.random.default_rng(3), router="sabre",
    )
    circuit, initial, final, swaps, _ = ref
    assert compiled.circuit.instructions == circuit.instructions
    assert compiled.initial_mapping == initial
    assert compiled.final_mapping == final
    assert compiled.swap_count == swaps


@pytest.mark.parametrize("method", ["ip", "ic"])
def test_preset_matches_seed_flow_packing_limit(method):
    """Figure 12's packing-limit knob routes through the pipeline intact."""
    coupling = ibmq_16_melbourne()
    program = PROBLEM.to_program([0.7], [0.35])

    ref = reference_compile(
        program, coupling, method,
        np.random.default_rng(5), packing_limit=2,
    )
    compiled = compile_with_method(
        program, coupling, method,
        rng=np.random.default_rng(5), packing_limit=2,
    )
    circuit, initial, final, swaps, _ = ref
    assert compiled.circuit.instructions == circuit.instructions
    assert compiled.final_mapping == final
    assert compiled.swap_count == swaps
