"""Chaos sweep: every compilation method survives degraded calibrations.

These are the resilience acceptance tests for the fault model.  A full
severity ladder of seeded fault scenarios is swept through all four
methods (qaim / ip / ic / vic) on both paper devices, and the resulting
:class:`ChaosReport` is audited for the three contracts:

1. no cell raises — every degraded compile returns a valid circuit,
2. degraded compiles carry populated ``warnings`` provenance, and
3. a pruned dead coupler is never used by a compiled circuit, and
   success probability degrades (within tolerance) as severity rises.
"""

import io
import json

import pytest

from repro.cli import main
from repro.experiments import (
    ChaosScenario,
    default_scenarios,
    run_chaos,
)

pytestmark = pytest.mark.chaos

METHODS = ("qaim", "ip", "ic", "vic")
DEVICES = ("ibmq_20_tokyo", "ibmq_16_melbourne")
NODES = 6
SEED = 7


@pytest.fixture(scope="module")
def report():
    return run_chaos(
        methods=METHODS, devices=DEVICES, nodes=NODES, seed=SEED
    )


class TestChaosSweep:
    def test_full_grid_covered(self, report):
        assert len(report.outcomes) == len(METHODS) * len(DEVICES) * len(
            default_scenarios()
        )
        assert len(default_scenarios()) >= 3

    def test_no_uncaught_exceptions(self, report):
        failures = report.failures()
        assert failures == [], "\n".join(
            f"{o.device}/{o.scenario}/{o.method}: {o.error}" for o in failures
        )

    def test_no_contract_violations(self, report):
        violations = report.contract_violations()
        assert violations == [], "\n".join(
            f"{o.device}/{o.scenario}/{o.method}: {why}"
            for o, why in violations
        )

    def test_degraded_compiles_carry_warnings(self, report):
        faulty = {s.name for s in default_scenarios() if s.injects_faults}
        for o in report.outcomes:
            if o.scenario in faulty:
                assert o.warnings, (
                    f"{o.device}/{o.scenario}/{o.method} degraded silently"
                )

    def test_baseline_compiles_are_clean(self, report):
        for o in report.outcomes:
            if o.scenario == "baseline":
                assert o.warnings == []
                assert o.pruned_edges == []

    def test_pruned_couplers_never_used(self, report):
        for o in report.outcomes:
            assert o.used_pruned_edges == []

    def test_every_cell_produced_a_circuit(self, report):
        for o in report.outcomes:
            assert o.ok
            assert o.depth is not None and o.depth > 0
            assert o.success_probability is not None
            assert 0.0 <= o.success_probability <= 1.0

    def test_success_probability_degrades_monotonically(self, report):
        violations = report.monotone_violations(tolerance=1.05)
        assert violations == [], "\n".join(
            f"{device}/{method}: {lo}→{hi} rose {p_lo:.3g}→{p_hi:.3g}"
            for device, method, lo, hi, p_lo, p_hi in violations
        )

    def test_dead_coupler_scenario_actually_prunes(self, report):
        pruned_cells = [
            o
            for o in report.outcomes
            if o.scenario == "dead-coupler" and o.pruned_edges
        ]
        assert pruned_cells, "dead-coupler scenario never pruned an edge"

    def test_report_renders(self, report):
        text = report.render()
        assert "chaos sweep" in text
        for method in METHODS:
            assert method in text


class TestChaosDeterminism:
    def test_sweep_is_reproducible(self, report):
        again = run_chaos(
            methods=METHODS, devices=DEVICES, nodes=NODES, seed=SEED
        )
        for a, b in zip(report.outcomes, again.outcomes):
            assert (a.device, a.scenario, a.method) == (
                b.device,
                b.scenario,
                b.method,
            )
            assert a.warnings == b.warnings
            assert a.pruned_edges == b.pruned_edges
            assert a.success_probability == b.success_probability

    def test_custom_scenarios(self):
        ladder = [
            ChaosScenario(name="ok", severity=0),
            ChaosScenario(name="bad", severity=1, nan_entries=2, inflate=3.0),
        ]
        rep = run_chaos(
            methods=("ic",),
            devices=("ibmq_20_tokyo",),
            scenarios=ladder,
            nodes=5,
            seed=3,
        )
        assert len(rep.outcomes) == 2
        assert rep.contract_violations() == []


class TestChaosCli:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_cli_json_smoke(self):
        code, text = self._run(
            [
                "chaos",
                "--nodes",
                "5",
                "--seed",
                "1",
                "--devices",
                "ibmq_20_tokyo",
                "--scenarios",
                "baseline,poison",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["contract_violations"] == []
        assert doc["monotone_violations"] == []
        assert len(doc["outcomes"]) == 2 * len(METHODS)
        poison_cells = [
            o for o in doc["outcomes"] if o["scenario"] == "poison"
        ]
        assert poison_cells and all(o["warnings"] for o in poison_cells)

    def test_cli_rendered_smoke(self):
        code, text = self._run(
            [
                "chaos",
                "--nodes",
                "5",
                "--seed",
                "2",
                "--devices",
                "ibmq_16_melbourne",
                "--scenarios",
                "baseline,drift,dead-coupler",
            ]
        )
        assert code == 0
        assert "chaos sweep" in text

    def test_cli_rejects_unknown_scenario(self, capsys):
        code, _ = self._run(["chaos", "--scenarios", "no-such-scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err.lower()
