"""Integration: figure modules honour their parameter overrides.

The benches and the CLI pass reduced parameters; these tests pin the
contract that overrides actually flow through (a silent fallback to paper
defaults would make 'reduced mode' lie about what it measured).
"""

from repro.experiments.figures import fig7, fig10, fig11b, fig12


class TestParameterOverrides:
    def test_fig7_custom_densities_appear_in_groups(self):
        result = fig7.run(instances=1, er_probs=(0.25,), degrees=(4,))
        groups = set(result.raw["depth"])
        assert groups == {("er", 0.25), ("regular", 4)}
        assert "qaim_vs_naive_depth_er0.25" in result.headline

    def test_fig10_custom_sizes(self):
        result = fig10.run(instances=1, node_sizes=(13,))
        assert "vic_over_ic_sp_er_n13" in result.headline
        assert "vic_over_ic_sp_er_n14" not in result.headline

    def test_fig11b_overrides_reach_description(self):
        result = fig11b.run(
            instances=1, num_nodes=7, shots=256, trajectories=4
        )
        assert "7-node" in result.description
        assert "256 shots" in result.description

    def test_fig12_grid_grows_for_large_problems(self):
        result = fig12.run(
            instances=1, num_nodes=38, packing_limits=(4, 8)
        )
        assert "grid_7x7" in result.description

    def test_fig12_custom_limits_in_headline(self):
        result = fig12.run(instances=1, num_nodes=12, packing_limits=(2, 6))
        assert "er_depth_limit2_over_limit6" in result.headline
