"""Integration: every compilation flow preserves the QAOA output state.

The strongest correctness check in the suite: take a logical QAOA circuit,
compile it with each method (placement + ordering + SWAP routing + stitching
+ native lowering), simulate the *compiled physical* circuit, fold the
physical distribution back to logical qubits through the final mapping, and
compare against the distribution of the uncompiled logical circuit.  Any bug
in routing, mapping bookkeeping, gate decomposition, CPHASE commutation
assumptions or measurement placement breaks this.
"""

import numpy as np
import pytest

from repro.circuits import decompose_to_basis
from repro.compiler import METHOD_PRESETS, compile_with_method
from repro.hardware import (
    ibmq_16_melbourne,
    linear_device,
    melbourne_calibration,
    ring_device,
)
from repro.qaoa import MaxCutProblem, build_qaoa_circuit
from repro.sim import StatevectorSimulator


def _logical_distribution(problem, program):
    sim = StatevectorSimulator()
    circuit = build_qaoa_circuit(program, measure=False)
    return sim.probabilities(circuit)


def _compiled_logical_distribution(compiled, num_logical):
    """Marginalise the compiled physical distribution onto logical qubits."""
    sim = StatevectorSimulator()
    probs = sim.probabilities(compiled.circuit.only_unitary())
    n_phys = compiled.coupling.num_qubits
    out = np.zeros(2 ** num_logical)
    mapping = compiled.final_mapping
    for idx in range(2 ** n_phys):
        logical_idx = 0
        for q in range(num_logical):
            if (idx >> mapping[q]) & 1:
                logical_idx |= 1 << q
        out[logical_idx] += probs[idx]
    return out


@pytest.fixture
def problem():
    return MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)])


@pytest.fixture
def program(problem):
    return problem.to_program([0.73], [0.21])


class TestDistributionPreservation:
    @pytest.mark.parametrize("method", sorted(METHOD_PRESETS))
    def test_method_preserves_distribution_on_ring(
        self, method, problem, program
    ):
        coupling = ring_device(8)
        if METHOD_PRESETS[method].ordering == "parity":
            # Parity-encoded circuits compute in the slot basis; their
            # equivalence check decodes first (TestParityEquivalence).
            pytest.skip("parity encoding is not distribution-identical")
        calibration = None
        if method == "vic":
            from repro.hardware import uniform_calibration

            calibration = uniform_calibration(coupling, cnot_error=0.02)
        compiled = compile_with_method(
            program,
            coupling,
            method,
            calibration=calibration,
            rng=np.random.default_rng(5),
        )
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    def test_native_lowering_preserves_distribution(self, problem, program):
        compiled = compile_with_method(
            program, ring_device(8), "ic", rng=np.random.default_rng(6)
        )
        sim = StatevectorSimulator()
        high = sim.probabilities(compiled.circuit.only_unitary())
        low = sim.probabilities(
            decompose_to_basis(compiled.circuit).only_unitary()
        )
        np.testing.assert_allclose(high, low, atol=1e-9)

    def test_multi_level_program_preserved(self, problem):
        program = problem.to_program([0.6, -0.4], [0.2, 0.35])
        compiled = compile_with_method(
            program, ring_device(8), "ic", rng=np.random.default_rng(7)
        )
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    def test_line_device_heavy_routing(self, problem, program):
        """A linear device forces many SWAPs — routing bookkeeping under
        stress must still preserve the state."""
        compiled = compile_with_method(
            program, linear_device(6), "naive", rng=np.random.default_rng(8)
        )
        assert compiled.swap_count > 0  # routing actually exercised
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    def test_melbourne_with_real_calibration(self, problem, program):
        compiled = compile_with_method(
            program,
            ibmq_16_melbourne(),
            "vic",
            calibration=melbourne_calibration(),
            rng=np.random.default_rng(9),
        )
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)


class TestSabreRouterEquivalence:
    @pytest.mark.parametrize("method", ["naive", "qaim", "ip", "ic"])
    def test_sabre_router_preserves_distribution(
        self, method, problem, program
    ):
        """The same front-ends over the SABRE backend must also preserve
        the computed state — the 'any conventional compiler' claim."""
        compiled = compile_with_method(
            program,
            ring_device(8),
            method,
            rng=np.random.default_rng(21),
            router="sabre",
        )
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    def test_sabre_on_linear_heavy_routing(self, problem, program):
        compiled = compile_with_method(
            program,
            linear_device(6),
            "naive",
            rng=np.random.default_rng(22),
            router="sabre",
        )
        assert compiled.swap_count > 0
        reference = _logical_distribution(problem, program)
        observed = _compiled_logical_distribution(compiled, problem.num_nodes)
        np.testing.assert_allclose(observed, reference, atol=1e-9)


class TestParityEquivalence:
    def test_routed_parity_circuit_matches_abstract(self, problem, program):
        """Routing the parity circuit onto a device must preserve its
        *decoded* logical distribution exactly (slot marginalisation +
        XOR decode against the unrouted parity circuit)."""
        from repro.compiler import ParityLayout, build_parity_circuit
        from repro.compiler.parity import parity_decode_indices

        layout = ParityLayout.from_program(program)
        K = layout.num_slots
        compiled = compile_with_method(
            program, ring_device(8), "parity", rng=np.random.default_rng(5)
        )
        assert compiled.encoding == "parity"
        # decoded distribution of the abstract (unrouted) parity circuit
        sim = StatevectorSimulator()
        abstract = build_parity_circuit(program, layout, 2.0, measure=False)
        slot_probs = sim.probabilities(abstract)
        decode = parity_decode_indices(np.arange(1 << K), layout)
        reference = np.zeros(2 ** problem.num_nodes)
        np.add.at(reference, decode, slot_probs)
        # decoded distribution of the routed physical circuit
        phys_probs = sim.probabilities(compiled.circuit.only_unitary())
        n_phys = compiled.coupling.num_qubits
        mapping = compiled.final_mapping
        observed = np.zeros(2 ** problem.num_nodes)
        for idx in range(2 ** n_phys):
            slot_idx = 0
            for s in range(K):
                if (idx >> mapping[s]) & 1:
                    slot_idx |= 1 << s
            observed[decode[slot_idx]] += phys_probs[idx]
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    def test_parity_fast_and_fallback_agree(self, problem, program):
        from repro.sim.fastpath import evaluate_fast, parity_plan

        compiled = compile_with_method(
            program, ring_device(8), "parity", rng=np.random.default_rng(5)
        )
        assert parity_plan(compiled).ok
        fast = evaluate_fast(compiled, mode="exact")
        slow = evaluate_fast(compiled, mode="exact", use_fastpath=False)
        assert fast.fastpath and not slow.fastpath
        assert fast.r0 == pytest.approx(slow.r0, abs=1e-10)


class TestExpectationPreservation:
    def test_sampled_expectation_matches_logical(self, problem, program):
        """Sampling the compiled circuit and decoding must reproduce the
        logical expectation value within shot noise."""
        from repro.qaoa.evaluation import decode_physical_counts
        from repro.sim.sampler import expectation_from_counts

        compiled = compile_with_method(
            program, ring_device(8), "ip", rng=np.random.default_rng(10)
        )
        sim = StatevectorSimulator()
        counts = sim.sample_counts(
            compiled.circuit, 20000, np.random.default_rng(11)
        )
        logical = decode_physical_counts(
            counts, compiled.final_mapping, problem.num_nodes
        )
        sampled = expectation_from_counts(logical, problem.cut_value)
        exact = float(
            np.dot(
                _logical_distribution(problem, program), problem.cut_values()
            )
        )
        assert sampled == pytest.approx(exact, abs=0.1)
