"""Integration: fleet scheduling end-to-end with real compiles and evals.

A small mixed stream against a three-slot fleet — clean hardware, a
fault-injected variant, and a synthetic ring — exercised under every
policy: real placement, real execution through per-device engines,
placement stamping, cache write-through, and report math against real
measured latencies.
"""

import pytest

from repro.fleet import (
    POLICIES,
    DeviceSlot,
    FleetSpec,
    Scheduler,
    synthetic_stream,
)
from repro.service import ResultCache


@pytest.fixture(scope="module")
def fleet():
    return FleetSpec(
        [
            DeviceSlot("tokyo", "ibmq_20_tokyo"),
            DeviceSlot(
                "tokyo-hurt", "ibmq_20_tokyo",
                faults={"drift_sigma": 0.4, "dead_edges": 2},
                fault_seed=5,
            ),
            DeviceSlot("ring", "ring_10"),
        ]
    )


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(
        10, seed=11, nodes=6, eval_fraction=0.3, shots=128, trajectories=4
    )


class TestFleetFlow:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_every_policy_serves_the_stream(self, fleet, stream, policy):
        report = Scheduler(fleet, policy).run(stream)
        assert report.policy == policy
        assert report.placed + len(report.rejections) == len(stream)
        placed_ok = [r for r in report.records if r.ok]
        assert placed_ok, "no job executed successfully"
        for record in report.records:
            assert record.device_label in fleet.labels()
            assert record.exec_ms > 0.0
            assert record.observed_ms >= record.exec_ms
        for rejection in report.rejections:
            assert rejection.kind
            assert rejection.detail
        # Virtual-clock invariant: per-device busy time sums to no more
        # than the makespan times the number of devices.
        assert sum(d.busy_ms for d in report.devices) <= \
            report.makespan_ms * len(fleet) + 1e-6

    def test_eval_jobs_measure_quality_and_stamp_placement(self, fleet):
        stream = [
            j for j in synthetic_stream(
                20, seed=4, nodes=6, eval_fraction=1.0,
                shots=128, trajectories=4,
            )
        ][:3]
        cache = ResultCache()
        report = Scheduler(fleet, "best-fidelity", cache=cache).run(stream)
        assert all(r.ok for r in report.records)
        for record in report.records:
            assert record.kind == "eval"
            assert record.arg is not None
            assert record.success_probability is not None
        # Same stream, fresh scheduler, shared cache: all hits, and the
        # cached results still carry a placement.
        rerun = Scheduler(fleet, "best-fidelity", cache=cache).run(stream)
        assert all(r.cached for r in rerun.records)
        assert all(r.device_label for r in rerun.records)

    def test_degraded_slot_reports_provenance(self, fleet):
        target = fleet.target("tokyo-hurt")
        assert target.warnings
        assert len(target.coupling.edges) < \
            len(fleet.target("tokyo").coupling.edges)
