"""Integration: every figure-reproduction module runs and reports sanely.

These run with tiny instance counts — the benchmark suite does the real
sweeps; here we verify plumbing, table shape and headline invariants.
"""

import pytest

from repro.experiments.figures import (
    ablations,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig12,
    sec6_planner,
)


class TestFig7:
    def test_runs_and_reports(self):
        result = fig7.run(instances=2, er_probs=(0.1, 0.5), degrees=(3, 8))
        assert result.figure == "fig7"
        assert "depth ratio" in result.table
        assert "qaim_vs_naive_depth_er0.1" in result.headline
        # Ratios are positive and NAIVE normalises to 1.
        assert result.raw["depth"][("er", 0.1)]["naive"] == pytest.approx(1.0)


class TestFig8:
    def test_runs_and_reports(self):
        result = fig8.run(instances=2, node_sizes=(12, 16))
        assert "qaim_vs_naive_depth_n12" in result.headline
        assert all(v > 0 for v in result.headline.values())


class TestFig9:
    def test_runs_and_reports(self):
        result = fig9.run(instances=2, er_probs=(0.3,), degrees=(3, 8))
        assert "ic_vs_qaim_depth_reg3" in result.headline
        # IC must reduce depth vs QAIM-only (the paper's central result).
        assert result.headline["ic_vs_qaim_depth_reg3"] < 1.0
        assert result.headline["ic_vs_qaim_depth_reg8"] < 1.0

    def test_denser_graphs_show_larger_ic_gain(self):
        result = fig9.run(instances=3, er_probs=(), degrees=(3, 8))
        assert (
            result.headline["ic_vs_qaim_depth_reg8"]
            < result.headline["ic_vs_qaim_depth_reg3"]
        )


class TestFig10:
    def test_vic_improves_success_probability(self):
        result = fig10.run(instances=3, node_sizes=(13,))
        assert result.headline["vic_over_ic_sp_er_n13"] >= 1.0


class TestFig11a:
    def test_summary_table_shape(self):
        result = fig11a.run(instances=1, er_probs=(0.3,), degrees=(4,))
        for method in ("naive", "qaim", "ip", "ic", "vic"):
            assert f"{method}_depth_norm" in result.headline
        assert result.headline["naive_depth_norm"] == pytest.approx(1.0)

    def test_ic_below_naive(self):
        result = fig11a.run(instances=2, er_probs=(0.3, 0.5), degrees=(4, 6))
        assert result.headline["ic_depth_norm"] < 1.0
        assert result.headline["ic_gates_norm"] < 1.0


class TestFig11b:
    def test_arg_pipeline_runs(self):
        result = fig11b.run(
            instances=1, num_nodes=8, shots=1024, trajectories=8
        )
        for method in ("qaim", "ip", "ic", "vic"):
            assert f"arg_mean_{method}" in result.headline
            assert -20.0 < result.headline[f"arg_mean_{method}"] < 100.0


class TestFig12:
    def test_packing_sweep_runs(self):
        result = fig12.run(
            instances=1, num_nodes=16, packing_limits=(1, 4, 8)
        )
        assert "er_depth_limit1_over_limit8" in result.headline
        # Packing limit 1 serialises everything: depth must exceed limit 8.
        assert result.headline["er_depth_limit1_over_limit8"] > 1.0

    def test_compile_time_falls_with_packing(self):
        result = fig12.run(
            instances=2, num_nodes=16, packing_limits=(1, 8)
        )
        assert result.headline["er_time_limit1_over_limit8"] > 1.0


class TestSec6:
    def test_ic_beats_naive_on_planner_workload(self):
        result = sec6_planner.run(instances=6)
        assert result.headline["ic_depth_reduction_vs_naive"] > 0.0
        assert result.headline["ic_gate_reduction_vs_naive"] > 0.0
        # Scalability claim: milliseconds, not the planner's 70 s.
        assert result.headline["ic_mean_compile_seconds"] < 1.0


class TestAblations:
    def test_qaim_radius(self):
        result = ablations.qaim_radius_ablation(instances=2, radii=(1, 2))
        assert any("r1_depth_vs_r2" in k for k in result.headline)

    def test_ic_dynamic(self):
        result = ablations.ic_dynamic_ablation(instances=3)
        # Frozen ordering should not beat dynamic on SWAP-driven gates.
        assert result.headline["er_frozen_over_dynamic_gates"] >= 0.95

    def test_vic_weight(self):
        result = ablations.vic_weight_ablation(instances=2)
        assert "er_neglog_over_inv_sp" in result.headline
        # -log R is the principled weighting (path weight = -log of path
        # success); it should never be drastically worse than 1/R.
        assert result.headline["er_neglog_over_inv_sp"] > 0.5


class TestFigureResultRendering:
    def test_render_contains_everything(self):
        result = sec6_planner.run(instances=3)
        text = result.render()
        assert "[sec6_planner]" in text
        assert "mean depth" in text
        assert "ic_depth_reduction_vs_naive" in text
