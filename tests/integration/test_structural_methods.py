"""Integration: the structural methods flow through every entry point.

The registry is the API contract — once a spec is registered (built-in
``swap_network``/``parity`` or a user's custom method), it must compile
through :func:`repro.compile`, survive serialization, resolve in the
service job layer, and pass fleet admission without any entry point
special-casing the name.
"""

import json

import numpy as np
import pytest

import repro
from repro.compiler import (
    PipelineSpec,
    compile_with_method,
    from_json,
    register_method,
    to_json,
    unregister_method,
)
from repro.fleet import DeviceSlot, FleetJob, FleetSpec, Scheduler
from repro.hardware import get_device
from repro.qaoa import MaxCutProblem
from repro.service import CompileJob, execute_job
from repro.service.job import job_from_dict, job_to_dict, method_label
from repro.sim.fastpath import evaluate_fast, fastpath_plan, parity_plan

PROBLEM = MaxCutProblem(
    6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]
)


def _program():
    return PROBLEM.to_program([0.7], [0.35])


class TestStructuralMethodsEndToEnd:
    @pytest.mark.parametrize("method", ["swap_network", "parity"])
    @pytest.mark.parametrize(
        "device", ["ibmq_16_melbourne", "ibmq_20_tokyo"]
    )
    def test_compile_and_evaluate_via_facade(self, method, device):
        result = repro.compile(
            PROBLEM,
            target=device,
            method=method,
            gammas=[0.7],
            betas=[0.35],
        )
        assert result.method == method
        scores = repro.evaluate(result, shots=2048, seed=3)
        assert 0.0 <= scores.r0 <= 1.0

    @pytest.mark.parametrize(
        "device", ["ibmq_16_melbourne", "ibmq_20_tokyo"]
    )
    def test_verifier_covers_both_methods(self, device):
        coupling = get_device(device)
        swapnet = compile_with_method(
            _program(), coupling, "swap_network",
            rng=np.random.default_rng(0),
        )
        plan = fastpath_plan(swapnet)
        assert plan.ok, plan.reason
        parity = compile_with_method(
            _program(), coupling, "parity", rng=np.random.default_rng(0)
        )
        refused = fastpath_plan(parity)
        assert not refused.ok and "verifier" in refused.reason
        pplan = parity_plan(parity)
        assert pplan.ok, pplan.reason

    def test_serialize_roundtrip_preserves_encoding(self):
        compiled = compile_with_method(
            _program(), get_device("ibmq_16_melbourne"), "parity",
            rng=np.random.default_rng(1),
        )
        restored = from_json(to_json(compiled))
        assert restored.encoding == "parity"
        assert restored.encoding_info == compiled.encoding_info
        assert parity_plan(restored).ok
        a = evaluate_fast(compiled, mode="exact")
        b = evaluate_fast(restored, mode="exact")
        assert a.r0 == pytest.approx(b.r0, abs=1e-12)


class TestCustomRegisteredMethod:
    def test_user_method_compiles_everywhere(self):
        spec = PipelineSpec(placement="linear", ordering="swap_network")
        register_method("custom_brick", spec)
        try:
            # facade
            result = repro.compile(
                PROBLEM,
                target="ibmq_20_tokyo",
                method="custom_brick",
                gammas=[0.7],
                betas=[0.35],
            )
            assert result.method == "custom_brick"
            # service job layer (string name resolves via the registry)
            job = CompileJob(
                program=_program(),
                device="ibmq_20_tokyo",
                method="custom_brick",
                job_id="custom-0",
            )
            outcome = execute_job(job)
            assert outcome.ok
            assert outcome.to_record()["method"] == "custom_brick"
            roundtrip = job_from_dict(job_to_dict(job))
            assert roundtrip.method == "custom_brick"
            # fleet admission
            scheduler = Scheduler(
                FleetSpec([DeviceSlot("tokyo", "ibmq_20_tokyo")])
            )
            candidate, rejection = scheduler.admit(FleetJob(job=job))
            assert rejection is None and candidate is not None
        finally:
            unregister_method("custom_brick")


class TestSpecPassthrough:
    def test_facade_accepts_inline_spec(self):
        spec = PipelineSpec(placement="linear", ordering="swap_network")
        result = repro.compile(
            PROBLEM,
            target="ibmq_20_tokyo",
            method=spec,
            gammas=[0.7],
            betas=[0.35],
        )
        assert result.method == spec.method == "linear+swap_network"

    def test_job_spec_roundtrips_with_stable_hash(self):
        spec = PipelineSpec(placement="linear", ordering="swap_network")
        job = CompileJob(
            program=_program(),
            device="ibmq_20_tokyo",
            method=spec,
            job_id="spec-0",
        )
        assert method_label(job.method) == "linear+swap_network"
        line = json.dumps(job_to_dict(job))
        restored = job_from_dict(json.loads(line))
        assert restored.method == spec
        assert restored.content_hash() == job.content_hash()

    def test_fingerprint_distinguishes_specs(self):
        a = PipelineSpec(placement="linear", ordering="swap_network")
        b = PipelineSpec(
            placement="linear", ordering="swap_network", lower=True
        )
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == PipelineSpec(
            placement="linear", ordering="swap_network"
        ).fingerprint()


class TestFleetAdmission:
    def test_unknown_method_rejected_at_admission(self):
        job = CompileJob(
            program=_program(),
            device="ibmq_20_tokyo",
            method="no_such_method",
            job_id="bad-0",
        )
        scheduler = Scheduler(
            FleetSpec([DeviceSlot("tokyo", "ibmq_20_tokyo")])
        )
        candidate, rejection = scheduler.admit(FleetJob(job=job))
        assert candidate is None
        assert rejection is not None
        assert rejection.kind == "unknown_method"
        assert "no_such_method" in rejection.detail

    def test_structural_methods_admitted(self):
        scheduler = Scheduler(
            FleetSpec([DeviceSlot("melb", "ibmq_16_melbourne")])
        )
        for method in ("swap_network", "parity"):
            job = CompileJob(
                program=_program(),
                device="ibmq_16_melbourne",
                method=method,
                job_id=f"ok-{method}",
            )
            candidate, rejection = scheduler.admit(FleetJob(job=job))
            assert rejection is None, rejection
