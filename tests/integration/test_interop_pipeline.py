"""Integration: interop pipeline — CLI compile, QASM round-trip, JSON
provenance, and simulation parity across the boundary."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.circuits.qasm import loads
from repro.compiler import compile_with_method, from_json, to_json
from repro.compiler.flow import run_incremental_flow
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.qaim import qaim_placement
from repro.hardware import ring_device
from repro.qaoa import MaxCutProblem
from repro.sim import StatevectorSimulator


class TestQasmCliPipeline:
    def test_cli_qasm_simulates_like_a_direct_compile(self, tmp_path):
        """Compile through the CLI, reload the emitted QASM, and check the
        circuit executes (distribution is normalised and over the right
        register size)."""
        qasm_file = tmp_path / "c.qasm"
        out = io.StringIO()
        code = main(
            [
                "compile", "--nodes", "6", "--family", "regular",
                "--param", "3", "--device", "ring_8", "--method", "ic",
                "--seed", "11", "--qasm", str(qasm_file),
            ],
            out=out,
        )
        assert code == 0
        circuit = loads(qasm_file.read_text())
        assert circuit.num_qubits == 8
        sim = StatevectorSimulator()
        probs = sim.probabilities(circuit.only_unitary())
        assert probs.sum() == pytest.approx(1.0)
        # The QASM must contain coupling-compliant cx gates only (ring_8).
        for inst in circuit:
            if inst.name == "cnot":
                a, b = inst.qubits
                assert (abs(a - b) == 1) or {a, b} == {0, 7}

    def test_json_provenance_supports_re_evaluation(self):
        """Serialise a compiled result, restore it elsewhere, and decode a
        fresh sampling run through the restored final mapping."""
        from repro.qaoa.evaluation import decode_physical_counts

        problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        program = problem.to_program([0.6], [0.3])
        compiled = compile_with_method(
            program, ring_device(8), "ic", rng=np.random.default_rng(0)
        )
        restored = from_json(to_json(compiled))
        sim = StatevectorSimulator()
        counts = decode_physical_counts(
            sim.sample_counts(
                restored.circuit, 4096, np.random.default_rng(1)
            ),
            restored.final_mapping,
            problem.num_nodes,
        )
        direct = decode_physical_counts(
            sim.sample_counts(
                compiled.circuit, 4096, np.random.default_rng(1)
            ),
            compiled.final_mapping,
            problem.num_nodes,
        )
        assert counts == direct


class TestRunIncrementalFlowPublicApi:
    def test_multi_level_with_packing_limit(self):
        device = ring_device(8)
        problem = MaxCutProblem(
            5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]
        )
        program = problem.to_program([0.5, 0.2], [0.3, 0.1])
        mapping = qaim_placement(
            program.pairs(), program.num_qubits, device,
            rng=np.random.default_rng(2),
        )
        compiler = IncrementalCompiler(
            device, packing_limit=2, rng=np.random.default_rng(3)
        )
        circuit, final_mapping, swaps = run_incremental_flow(
            program, mapping, compiler
        )
        ops = circuit.count_ops()
        assert ops["cphase"] == 12  # 6 edges x 2 levels
        assert ops["rx"] == 10
        assert ops["measure"] == 5
        assert swaps == ops.get("swap", 0)
        # Final mapping covers all logical qubits.
        assert sorted(final_mapping) == [0, 1, 2, 3, 4]

    def test_flow_matches_compile_qaoa(self):
        """run_incremental_flow is exactly what compile_qaoa(ordering='ic')
        executes — same circuit for the same seeds."""
        from repro.compiler.flow import compile_qaoa

        device = ring_device(8)
        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        program = problem.to_program([0.4], [0.2])

        full = compile_qaoa(
            program, device, placement="qaim", ordering="ic",
            rng=np.random.default_rng(7),
        )
        # Reproduce manually with the same seed stream.
        rng = np.random.default_rng(7)
        from repro.compiler.qaim import QAIMConfig

        mapping = qaim_placement(
            program.pairs(), program.num_qubits, device, rng=rng,
            config=QAIMConfig(radius=2),
        )
        compiler = IncrementalCompiler(device, rng=rng)
        circuit, final_mapping, swaps = run_incremental_flow(
            program, mapping, compiler
        )
        assert circuit.instructions == full.circuit.instructions
        assert final_mapping == full.final_mapping
        assert swaps == full.swap_count
