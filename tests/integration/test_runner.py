"""Integration tests for the consolidated experiment runner."""

from repro.experiments.figures import sec6_planner
from repro.experiments.runner import (
    PAPER_HEADLINES,
    main,
    render_report,
)


class TestRenderReport:
    def test_contains_paper_claims_and_measurements(self):
        result = sec6_planner.run(instances=3)
        report = render_report([result])
        assert "## sec6_planner" in report
        assert "Paper reports" in report
        assert "temporal planner" in report
        assert "ic_depth_reduction_vs_naive" in report

    def test_every_figure_has_paper_headlines(self):
        for figure in (
            "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12",
            "sec6_planner",
        ):
            assert figure in PAPER_HEADLINES


class TestMainScript:
    def test_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["--instances", "1", "--output", str(out), "--no-ablations"]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Experiment report")
        assert "## fig7" in text
        assert "## sec6_planner" in text
