"""Integration: timing, decoherence and success-probability models against
the compilation flows — quantifying the paper's qualitative claims.
"""

import numpy as np

from repro.circuits.timing import decoherence_factor, execution_time
from repro.compiler import compile_with_method, success_probability
from repro.experiments.harness import make_problem
from repro.hardware import (
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    melbourne_calibration,
)
from repro.sim import NoiseModel, NoisySimulator
from repro.qaoa.evaluation import decode_physical_counts


def _mean_over_instances(metric_fn, methods, instances=6, seed=99):
    problem_rng = np.random.default_rng(seed)
    sums = {m: 0.0 for m in methods}
    for i in range(instances):
        problem = make_problem("er", 14, 0.4, problem_rng)
        program = problem.to_program([0.7], [0.35])
        for method in methods:
            compiled = compile_with_method(
                program,
                ibmq_20_tokyo(),
                method,
                rng=np.random.default_rng((i, method == methods[0])),
            )
            sums[method] += metric_fn(compiled)
    return {m: v / instances for m, v in sums.items()}


class TestExecutionTime:
    def test_ic_executes_faster_than_naive(self):
        """Depth reduction is execution-time reduction, quantitatively."""
        times = _mean_over_instances(
            lambda c: execution_time(c.native()), ("naive", "ic")
        )
        assert times["ic"] < times["naive"]

    def test_ic_decoheres_less_than_naive(self):
        factors = _mean_over_instances(
            lambda c: decoherence_factor(c.native()), ("naive", "ic")
        )
        assert factors["ic"] > factors["naive"]


class TestSuccessProbabilityIsPredictive:
    def test_metric_tracks_sampled_fidelity_under_noise_scaling(self):
        """The product-of-gate-success metric and the actually sampled
        approximation ratio must move together: scale the hardware noise
        up and both fall, monotonically, for a fixed compiled circuit."""
        coupling = ibmq_16_melbourne()
        calibration = melbourne_calibration()
        problem = make_problem("er", 9, 0.45, np.random.default_rng(7))
        program = problem.to_program([0.7], [0.35])
        compiled = compile_with_method(
            program, coupling, "ic", rng=np.random.default_rng(8)
        )
        base = NoiseModel.from_calibration(calibration)

        def sampled_ratio(scale):
            noisy = NoisySimulator(base.scaled(scale), trajectories=48)
            totals = []
            for seed in range(3):
                counts = decode_physical_counts(
                    noisy.sample_counts(
                        compiled.circuit, 2048, np.random.default_rng(seed)
                    ),
                    compiled.final_mapping,
                    problem.num_nodes,
                )
                shots = sum(counts.values())
                totals.append(
                    sum(problem.cut_value(b) * c for b, c in counts.items())
                    / shots
                )
            return float(np.mean(totals)) / problem.max_cut_value()

        ratios = [sampled_ratio(s) for s in (0.0, 1.0, 4.0)]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_vic_maximises_the_metric_it_optimises(self):
        """Across instances, VIC's geometric-mean success probability must
        beat IC's on the heavily varied melbourne calibration (Figure 10's
        claim; geometric mean because the metric is multiplicative)."""
        import math

        coupling = ibmq_16_melbourne()
        calibration = melbourne_calibration()
        problem_rng = np.random.default_rng(17)
        logs = {"ic": [], "vic": []}
        for i in range(10):
            problem = make_problem("er", 13, 0.5, problem_rng)
            program = problem.to_program([0.7], [0.35])
            for method in logs:
                compiled = compile_with_method(
                    program,
                    coupling,
                    method,
                    calibration=calibration,
                    rng=np.random.default_rng((i, method == "ic")),
                )
                logs[method].append(
                    math.log(
                        success_probability(compiled.native(), calibration)
                    )
                )
        assert np.mean(logs["vic"]) > np.mean(logs["ic"])


class TestT2EndToEnd:
    def test_t2_degrades_compiled_qaoa_output(self):
        coupling = ibmq_16_melbourne()
        calibration = melbourne_calibration()
        problem = make_problem("er", 8, 0.5, np.random.default_rng(3))
        program = problem.to_program([0.7], [0.35])
        compiled = compile_with_method(
            program, coupling, "ic", rng=np.random.default_rng(4)
        )

        def sampled_ratio(noisy):
            values = []
            for seed in range(4):
                counts = decode_physical_counts(
                    noisy.sample_counts(
                        compiled.circuit, 4096, np.random.default_rng(seed)
                    ),
                    compiled.final_mapping,
                    problem.num_nodes,
                )
                total = sum(counts.values())
                values.append(
                    sum(problem.cut_value(b) * c for b, c in counts.items())
                    / total
                )
            return float(np.mean(values)) / problem.max_cut_value()

        without_t2 = sampled_ratio(
            NoisySimulator(
                NoiseModel.from_calibration(calibration), trajectories=48
            )
        )
        with_t2 = sampled_ratio(
            NoisySimulator(
                NoiseModel.from_calibration(calibration, t2_ns=2_000.0),
                trajectories=48,
            )
        )
        assert with_t2 < without_t2
