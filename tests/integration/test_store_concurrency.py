"""Concurrency and process-lifecycle tests for the artifact store.

The store's claims are cross-process claims: shard directories survive
concurrent writers from several processes, shared-memory segments are
visible to children and owned (unlinked) only by their creator, and a
process full of attachments exits without leaking ``/dev/shm`` entries.
These tests spawn real processes to check each one.
"""

import json
import multiprocessing as mp
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.store import ShardedDiskTier, SharedArrayTier, shard_for
from repro.store.shm import segment_name


def _disk_worker(directory, worker_id, keys, out_queue):
    tier = ShardedDiskTier(directory)
    results = {}
    for key in keys:
        tier.put(key, {"worker": worker_id, "key": key})
        lookup = tier.get(key)
        results[key] = lookup.hit and isinstance(lookup.payload, dict)
    out_queue.put((worker_id, results))


def _shm_child_resolve(key, shape, out_queue):
    tier = SharedArrayTier()
    arrays = tier.resolve(key)
    if arrays is None:
        out_queue.put(None)
        return
    matrix = arrays["m"]
    out_queue.put(
        {
            "shape": list(matrix.shape),
            "sum": float(matrix.sum()),
            "writeable": bool(matrix.flags.writeable),
        }
    )
    tier.cleanup()


class TestMultiProcessDisk:
    def test_concurrent_put_get_same_shard(self, tmp_path):
        """Several processes hammering keys that share shard dirs never
        corrupt an entry or drop a write (atomic tmp + os.replace)."""
        keys = [f"key-{i}" for i in range(16)]
        queue = mp.Queue()
        workers = [
            mp.Process(
                target=_disk_worker, args=(str(tmp_path), w, keys, queue)
            )
            for w in range(4)
        ]
        for p in workers:
            p.start()
        outcomes = [queue.get(timeout=60) for _ in workers]
        for p in workers:
            p.join(timeout=60)
            assert p.exitcode == 0
        for _worker_id, results in outcomes:
            assert all(results.values())

        tier = ShardedDiskTier(tmp_path)
        assert tier.entries() == len(keys)
        for key in keys:
            lookup = tier.get(key)
            assert lookup.hit
            assert lookup.payload["key"] == key
        # No writer debris left behind.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_entries_land_in_expected_shards(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        for i in range(8):
            tier.put(f"k{i}", {"i": i})
        for i in range(8):
            assert (tmp_path / shard_for(f"k{i}") / f"k{i}.json").exists()


class TestSharedMemoryLifecycle:
    def test_child_process_resolves_parent_segment(self):
        tier = SharedArrayTier()
        matrix = np.arange(64, dtype=np.float64).reshape(8, 8)
        key = "it-parent-child"
        try:
            assert tier.publish(key, {"m": matrix})
            queue = mp.Queue()
            child = mp.Process(
                target=_shm_child_resolve, args=(key, (8, 8), queue)
            )
            child.start()
            out = queue.get(timeout=60)
            child.join(timeout=60)
            assert child.exitcode == 0
            assert out is not None
            assert out["shape"] == [8, 8]
            assert out["sum"] == float(matrix.sum())
            assert not out["writeable"]
            # The attaching child's exit must not unlink the parent's
            # segment (bpo-39959 tracker-on-attach hazard).
            assert os.path.exists(f"/dev/shm/{segment_name(key)}")
        finally:
            tier.cleanup()
        assert not os.path.exists(f"/dev/shm/{segment_name(key)}")

    def test_process_exit_leaves_no_leaked_segments(self, tmp_path):
        """A subprocess that publishes and resolves segments exits clean:
        its own segments are unlinked at exit, and nothing it merely
        attached to is removed."""
        script = tmp_path / "shm_exercise.py"
        script.write_text(
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.store import SharedArrayTier\n"
            "from repro.store.shm import segment_name\n"
            "tier = SharedArrayTier()\n"
            "keys = [f'leak-check-{i}' for i in range(4)]\n"
            "for i, key in enumerate(keys):\n"
            "    assert tier.publish(key, {'m': np.full((16, 16), i)})\n"
            "    assert tier.resolve(key) is not None\n"
            "print(json.dumps([segment_name(k) for k in keys]))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        names = json.loads(proc.stdout.strip().splitlines()[-1])
        assert len(names) == 4
        leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
        assert leaked == [], f"leaked shm segments: {leaked}"

    def test_fork_inherited_segments_not_unlinked_by_child(self):
        """A forked child that calls cleanup() must not unlink segments
        the parent owns (pid-guarded ownership)."""
        tier = SharedArrayTier()
        key = "it-fork-guard"
        try:
            assert tier.publish(key, {"m": np.zeros((4, 4))})

            def _child_cleanup():
                tier.cleanup()  # inherited _owned map, different pid

            child = mp.Process(target=_child_cleanup)
            child.start()
            child.join(timeout=60)
            assert child.exitcode == 0
            assert os.path.exists(f"/dev/shm/{segment_name(key)}")
        finally:
            tier.cleanup()


class TestCorruptShardQuarantineAcrossProcesses:
    def test_quarantine_counted_once_per_corrupt_entry(self, tmp_path):
        """Two tier instances (stand-ins for two processes) racing into a
        corrupt entry: the file is quarantined exactly once, both report
        a miss, and quarantine counters reflect what each one saw."""
        writer = ShardedDiskTier(tmp_path)
        writer.put("poisoned", {"v": 1})
        writer.entry_path("poisoned").write_text("{torn mid-write")

        first = ShardedDiskTier(tmp_path)
        second = ShardedDiskTier(tmp_path)
        lookup_a = first.get("poisoned")
        lookup_b = second.get("poisoned")
        assert lookup_a.quarantined and not lookup_a.hit
        # Second reader finds the entry already moved aside: plain miss.
        assert not lookup_b.hit and not lookup_b.quarantined
        shard = shard_for("poisoned")
        assert first.shard_stats()[shard].quarantines == 1
        assert second.shard_stats()[shard].misses == 1
        corrupt = list((tmp_path / shard).glob("*.corrupt"))
        assert len(corrupt) == 1


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
