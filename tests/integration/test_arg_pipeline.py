"""Integration: the full ARG measurement pipeline (Section V-A/V-G)."""

import numpy as np
import pytest

from repro.compiler import compile_with_method
from repro.hardware import ibmq_16_melbourne, melbourne_calibration
from repro.qaoa import MaxCutProblem, evaluate_arg, optimize_qaoa
from repro.sim import NoiseModel, NoisySimulator, StatevectorSimulator


@pytest.fixture(scope="module")
def setup():
    problem = MaxCutProblem(
        8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
            (0, 7), (1, 6), (2, 5)]
    )
    opt = optimize_qaoa(problem, p=1)
    program = problem.to_program(opt.gammas, opt.betas)
    cal = melbourne_calibration()
    ideal = StatevectorSimulator()
    noisy = NoisySimulator(NoiseModel.from_calibration(cal), trajectories=24)
    return problem, program, cal, ideal, noisy


class TestARGPipeline:
    def test_optimized_parameters_beat_random_sampling(self, setup):
        problem, program, *_ = setup
        opt = optimize_qaoa(problem, p=1)
        # Random assignment cuts half the edges in expectation; the
        # optimised circuit must do meaningfully better.
        assert opt.expectation > 0.55 * len(problem.edges)

    @pytest.mark.parametrize("method", ["qaim", "ip", "ic", "vic"])
    def test_arg_is_finite_and_noise_positive(self, setup, method):
        problem, program, cal, ideal, noisy = setup
        compiled = compile_with_method(
            program,
            ibmq_16_melbourne(),
            method,
            calibration=cal,
            rng=np.random.default_rng(1),
        )
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=2048,
            rng=np.random.default_rng(2),
        )
        assert result.rh < result.r0  # hardware noise must cost something
        assert 0.0 < result.arg < 100.0

    def test_r0_close_to_noiseless_optimum(self, setup):
        """The compiled circuit's noiseless sampling ratio should match the
        optimiser's expectation / maxcut ratio up to shot noise — the
        compiled circuit computes the same state."""
        problem, program, cal, ideal, noisy = setup
        opt = optimize_qaoa(problem, p=1)
        compiled = compile_with_method(
            program, ibmq_16_melbourne(), "ic", calibration=cal,
            rng=np.random.default_rng(3),
        )
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=8192,
            rng=np.random.default_rng(4),
        )
        assert result.r0 == pytest.approx(opt.approximation_ratio, abs=0.03)

    def test_heavier_noise_worsens_arg(self, setup):
        problem, program, cal, ideal, _ = setup
        compiled = compile_with_method(
            program, ibmq_16_melbourne(), "ic", calibration=cal,
            rng=np.random.default_rng(5),
        )
        base = NoiseModel.from_calibration(cal)
        mild = NoisySimulator(base.scaled(0.3), trajectories=24)
        harsh = NoisySimulator(base.scaled(3.0), trajectories=24)
        arg_mild = evaluate_arg(
            compiled, problem, ideal, mild, shots=4096,
            rng=np.random.default_rng(6),
        ).arg
        arg_harsh = evaluate_arg(
            compiled, problem, ideal, harsh, shots=4096,
            rng=np.random.default_rng(6),
        ).arg
        assert arg_harsh > arg_mild

    def test_fewer_gates_generally_means_lower_arg(self, setup):
        """The paper's core claim behind Figure 11(b): better-compiled
        (fewer gates) circuits lose less approximation ratio on hardware.
        Compare the best and worst compilations of the same instance."""
        problem, program, cal, ideal, noisy = setup
        rng = np.random.default_rng(8)
        compiled = {
            m: compile_with_method(
                program, ibmq_16_melbourne(), m, calibration=cal, rng=rng
            )
            for m in ("qaim", "ic")
        }
        assert compiled["ic"].gate_count() <= compiled["qaim"].gate_count()
        args = {
            m: np.mean(
                [
                    evaluate_arg(
                        c, problem, ideal, noisy, shots=4096,
                        rng=np.random.default_rng(100 + r),
                    ).arg
                    for r in range(3)
                ]
            )
            for m, c in compiled.items()
        }
        assert args["ic"] <= args["qaim"] + 2.0  # allow shot-noise slack
