"""Property tests for the service job content hash.

The cache key must be *semantically* content-addressed: any reordering of
the commuting CPHASE terms (edge-list permutation, endpoint swaps within a
term) describes the same compilation problem and must hash identically,
while anything output-affecting (seed, method, packing limit, weights)
must produce a distinct key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.problems import Level, QAOAProgram
from repro.service import CompileJob


@st.composite
def programs(draw):
    n = draw(st.integers(3, 10))
    edge_pool = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(edge_pool), min_size=1, max_size=12, unique=True
        )
    )
    weights = [
        draw(st.floats(0.1, 4.0, allow_nan=False)) for _ in chosen
    ]
    p = draw(st.integers(1, 2))
    levels = [
        Level(
            draw(st.floats(-3.0, 3.0, allow_nan=False)),
            draw(st.floats(-1.5, 1.5, allow_nan=False)),
        )
        for _ in range(p)
    ]
    edges = [(a, b, w) for (a, b), w in zip(chosen, weights)]
    return QAOAProgram(num_qubits=n, edges=edges, levels=levels)


def _job(program, **kwargs):
    defaults = dict(program=program, device="ibmq_20_tokyo")
    defaults.update(kwargs)
    return CompileJob(**defaults)


class TestHashInvariance:
    @given(programs(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_edge_permutation_invariant(self, program, rand):
        shuffled_edges = list(program.edges)
        rand.shuffle(shuffled_edges)
        shuffled = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=shuffled_edges,
            levels=program.levels,
            linear=program.linear,
        )
        assert _job(program).content_hash() == _job(shuffled).content_hash()

    @given(programs(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_endpoint_swap_invariant(self, program, rand):
        flipped_edges = [
            (b, a, w) if rand.random() < 0.5 else (a, b, w)
            for a, b, w in program.edges
        ]
        flipped = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=flipped_edges,
            levels=program.levels,
            linear=program.linear,
        )
        assert _job(program).content_hash() == _job(flipped).content_hash()


class TestHashDistinctness:
    @given(programs(), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_seed_distinct(self, program, seed_a, seed_b):
        hash_a = _job(program, seed=seed_a).content_hash()
        hash_b = _job(program, seed=seed_b).content_hash()
        assert (hash_a == hash_b) == (seed_a == seed_b)

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_method_and_limit_distinct(self, program):
        base = _job(program, method="ic", packing_limit=None)
        assert (
            base.content_hash()
            != _job(program, method="ip").content_hash()
        )
        assert (
            base.content_hash()
            != _job(program, method="ic", packing_limit=4).content_hash()
        )

    @given(programs(), st.floats(0.01, 0.5, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_weight_perturbation_distinct(self, program, delta):
        a, b, w = program.edges[0]
        perturbed = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=[(a, b, w + delta)] + list(program.edges[1:]),
            levels=program.levels,
            linear=program.linear,
        )
        assert _job(program).content_hash() != _job(perturbed).content_hash()
