"""Property tests for the unified QUBO/Ising frontend and angle batching.

Two exactness claims back the frontend:

* :meth:`IsingProblem.from_qubo` preserves energies — for any random
  QUBO matrix the Ising problem's dense cost vector equals a direct
  brute-force evaluation of ``x^T Q x`` over every bit assignment;
* :func:`expectation_batch` is just a layout change — a whole grid of
  angle points must agree with one-at-a-time exact evaluation
  (:func:`qaoa_statevector` + diagonal expectation, and the compiled
  ``evaluate_fast(mode="exact")`` path) to 1e-9.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_with_method
from repro.hardware.devices import get_device
from repro.qaoa.frontend import cost_values, problem_fingerprint
from repro.qaoa.ising import IsingProblem
from repro.sim.fastpath import (
    cost_diagonal,
    evaluate_fast,
    expectation_batch,
    qaoa_statevector,
    qaoa_statevector_batch,
)

ATOL = 1e-9


@st.composite
def qubo_matrices(draw):
    n = draw(st.integers(1, 12))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    matrix = rng.uniform(-2.0, 2.0, size=(n, n))
    # from_qubo symmetrises, so feed it arbitrary (non-symmetric) input.
    return matrix


@st.composite
def ising_problems(draw):
    n = draw(st.integers(2, 8))
    pair_pool = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(pair_pool), min_size=1, max_size=12, unique=True
        )
    )
    quadratic = {
        pair: draw(st.floats(-2.0, 2.0, allow_nan=False)) for pair in chosen
    }
    linear = {
        q: draw(st.floats(-1.0, 1.0, allow_nan=False))
        for q in draw(
            st.lists(st.integers(0, n - 1), max_size=n, unique=True)
        )
    }
    offset = draw(st.floats(-3.0, 3.0, allow_nan=False))
    return IsingProblem(n, quadratic, linear, offset)


class TestQuboEnergies:
    @given(qubo_matrices(), st.sampled_from(["max", "min"]))
    @settings(max_examples=60, deadline=None)
    def test_from_qubo_matches_brute_force(self, matrix, sense):
        n = matrix.shape[0]
        problem = IsingProblem.from_qubo(matrix, sense=sense)
        values = problem.values()
        sign = 1.0 if sense == "max" else -1.0
        for z in range(2**n):
            x = np.array([(z >> i) & 1 for i in range(n)], dtype=float)
            direct = sign * float(x @ matrix @ x)
            assert abs(values[z] - direct) < ATOL, (z, values[z], direct)

    @given(qubo_matrices())
    @settings(max_examples=30, deadline=None)
    def test_optimum_is_max_of_cost_vector(self, matrix):
        problem = IsingProblem.from_qubo(matrix)
        assert problem.optimum() == float(problem.values().max())
        assert np.array_equal(cost_values(problem), problem.values())

    @given(ising_problems())
    @settings(max_examples=40, deadline=None)
    def test_cost_vector_is_diagonal_phase_plus_offset(self, problem):
        """The interned diagonal reproduces the classical cost exactly:
        ``C(z) = phase(z) + offset`` — the identity the batched
        expectation path and the service optimizer both rely on."""
        diag = cost_diagonal(problem)
        delta = problem.values() - (diag.phase + problem.offset)
        assert np.max(np.abs(delta)) < ATOL


class TestBatchedAgainstLooped:
    @given(ising_problems(), st.integers(1, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_batch_statevectors_match_looped(self, problem, p, seed):
        rng = np.random.default_rng(seed)
        gammas = rng.uniform(-np.pi, np.pi, size=(5, p))
        betas = rng.uniform(-np.pi / 2, np.pi / 2, size=(5, p))
        batch = qaoa_statevector_batch(problem, gammas, betas)
        for k in range(5):
            single = qaoa_statevector(problem.to_program(gammas[k], betas[k]))
            assert np.max(np.abs(batch[k] - single)) < ATOL

    @given(ising_problems(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_batch_expectations_match_looped(self, problem, seed):
        rng = np.random.default_rng(seed)
        gammas = rng.uniform(-np.pi, np.pi, 7)
        betas = rng.uniform(-np.pi / 2, np.pi / 2, 7)
        batch = expectation_batch(problem, gammas, betas)
        values = problem.values()
        for k in range(7):
            state = qaoa_statevector(
                problem.to_program([gammas[k]], [betas[k]])
            )
            looped = float(np.abs(state) ** 2 @ values)
            assert abs(batch[k] - looped) < ATOL

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_compiled_evaluate_fast(self, seed):
        """Grid sweep == looped exact compiled evaluation, the contract
        the CI angle-batch bench gates at >=5x."""
        from repro.experiments.harness import make_problem

        rng = np.random.default_rng(seed)
        problem = make_problem("er", 8, 0.6, np.random.default_rng(seed))
        max_cut = problem.max_cut_value()
        gammas = rng.uniform(-np.pi, np.pi, 4)
        betas = rng.uniform(-np.pi / 2, np.pi / 2, 4)
        batch = expectation_batch(problem, gammas, betas)
        coupling = get_device("ibmq_20_tokyo")
        for k in range(4):
            compiled = compile_with_method(
                problem.to_program([gammas[k]], [betas[k]]),
                coupling,
                "ic",
                rng=np.random.default_rng(seed),
            )
            outcome = evaluate_fast(compiled, noise=None, mode="exact")
            assert abs(batch[k] - outcome.r0 * max_cut) < ATOL

    @given(ising_problems(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_chunked_grid_is_bit_identical(self, problem, seed):
        rng = np.random.default_rng(seed)
        gammas = rng.uniform(-np.pi, np.pi, 6)
        betas = rng.uniform(-np.pi / 2, np.pi / 2, 6)
        whole = expectation_batch(problem, gammas, betas)
        chunked = expectation_batch(
            problem, gammas, betas, max_batch_amplitudes=1
        )
        assert np.array_equal(whole, chunked)


class TestFingerprints:
    @given(ising_problems())
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_stable_under_term_order(self, problem):
        shuffled = IsingProblem(
            problem.num_spins,
            dict(reversed(list(problem.quadratic.items()))),
            dict(reversed(list(problem.linear.items()))),
            problem.offset,
        )
        assert problem_fingerprint(shuffled) == problem_fingerprint(problem)
        assert shuffled.content_fingerprint() == problem.content_fingerprint()
