"""Property-based tests for the peephole optimiser."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.circuits.optimize import peephole_optimize

from ..conftest import assert_equal_up_to_global_phase, circuit_unitary

NUM_QUBITS = 3


@st.composite
def native_circuits(draw, max_gates=18):
    """Random circuits biased toward cancellation opportunities."""
    qc = QuantumCircuit(NUM_QUBITS)
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.integers(0, 5))
        if kind <= 1:
            a = draw(st.integers(0, NUM_QUBITS - 1))
            b = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda x: x != a))
            qc.cnot(a, b)
        elif kind == 2:
            qc.u1(
                draw(st.floats(-math.pi, math.pi)),
                draw(st.integers(0, NUM_QUBITS - 1)),
            )
        elif kind == 3:
            qc.u2(
                draw(st.floats(-math.pi, math.pi)),
                draw(st.floats(-math.pi, math.pi)),
                draw(st.integers(0, NUM_QUBITS - 1)),
            )
        elif kind == 4:
            a = draw(st.integers(0, NUM_QUBITS - 1))
            b = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda x: x != a))
            qc.cphase(draw(st.floats(-math.pi, math.pi)), a, b)
        else:
            qc.u1(0.0, draw(st.integers(0, NUM_QUBITS - 1)))
    return decompose_to_basis(qc)


class TestOptimizeProperties:
    @given(native_circuits())
    @settings(max_examples=60, deadline=None)
    def test_never_grows(self, circuit):
        out = peephole_optimize(circuit)
        assert len(out) <= len(circuit)
        assert out.depth() <= circuit.depth()

    @given(native_circuits(max_gates=12))
    @settings(max_examples=40, deadline=None)
    def test_unitary_preserved(self, circuit):
        out = peephole_optimize(circuit)
        assert_equal_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(out), atol=1e-8
        )

    @given(native_circuits())
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, circuit):
        once = peephole_optimize(circuit)
        twice = peephole_optimize(once)
        assert once.instructions == twice.instructions

    @given(native_circuits())
    @settings(max_examples=40, deadline=None)
    def test_stays_in_basis(self, circuit):
        from repro.circuits import IBM_BASIS

        out = peephole_optimize(circuit)
        out.validate_basis(IBM_BASIS)
