"""Property-based tests across the whole compilation stack."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_with_method
from repro.hardware import ring_device
from repro.qaoa import MaxCutProblem
from repro.sim import StatevectorSimulator


@st.composite
def problems(draw, max_nodes=6):
    n = draw(st.integers(3, max_nodes))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    for _ in range(50):
        g = nx.erdos_renyi_graph(n, 0.5, seed=int(rng.integers(1 << 30)))
        if g.number_of_edges() > 0:
            return MaxCutProblem.from_graph(g)
    raise AssertionError("could not sample a non-empty graph")


METHODS = st.sampled_from(["naive", "greedy_v", "greedy_e", "qaim", "ip", "ic"])


class TestCompilationProperties:
    @given(problems(), METHODS, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_compiled_circuit_is_coupling_compliant(self, problem, method, seed):
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(8), method, rng=np.random.default_rng(seed)
        )
        compiled.validate()

    @given(problems(), METHODS, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_gate_census_invariant(self, problem, method, seed):
        """Every flow emits exactly the program's gates plus SWAPs."""
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(8), method, rng=np.random.default_rng(seed)
        )
        ops = compiled.circuit.count_ops()
        n = problem.num_nodes
        assert ops["h"] == n
        assert ops["cphase"] == len(problem.edges)
        assert ops["rx"] == n
        assert ops["measure"] == n
        assert ops.get("swap", 0) == compiled.swap_count

    @given(problems(), METHODS, st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_distribution_preserved(self, problem, method, seed):
        """Compilation never changes the computed state (marginalised onto
        logical qubits through the final mapping)."""
        from repro.qaoa import build_qaoa_circuit

        program = problem.to_program([0.7], [0.25])
        compiled = compile_with_method(
            program, ring_device(8), method, rng=np.random.default_rng(seed)
        )
        sim = StatevectorSimulator()
        reference = sim.probabilities(build_qaoa_circuit(program, measure=False))
        phys = sim.probabilities(compiled.circuit.only_unitary())
        n = problem.num_nodes
        mapping = compiled.final_mapping
        observed = np.zeros(2 ** n)
        for idx in range(len(phys)):
            logical_idx = 0
            for q in range(n):
                if (idx >> mapping[q]) & 1:
                    logical_idx |= 1 << q
            observed[logical_idx] += phys[idx]
        np.testing.assert_allclose(observed, reference, atol=1e-9)

    @given(problems(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_final_mapping_reachable_from_initial_by_swaps(
        self, problem, seed
    ):
        """The final mapping must equal the initial mapping transported
        through the circuit's SWAP gates, in order."""
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(8), "ic", rng=np.random.default_rng(seed)
        )
        mapping = dict(compiled.initial_mapping)
        inverse = {p: l for l, p in mapping.items()}
        for inst in compiled.circuit:
            if inst.name != "swap":
                continue
            a, b = inst.qubits
            la, lb = inverse.pop(a, None), inverse.pop(b, None)
            if la is not None:
                inverse[b] = la
                mapping[la] = b
            if lb is not None:
                inverse[a] = lb
                mapping[lb] = a
        assert mapping == compiled.final_mapping
