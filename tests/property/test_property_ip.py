"""Property-based tests for IP bin packing and the MOQ bound."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ip import fill_single_layer, parallelize
from repro.hardware.profiling import max_operations_per_qubit


@st.composite
def pair_lists(draw, max_qubits=10, max_pairs=25):
    n = draw(st.integers(2, max_qubits))
    count = draw(st.integers(0, max_pairs))
    pairs = []
    for _ in range(count):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1).filter(lambda x: x != a))
        pairs.append((a, b))
    return pairs


class TestParallelizeProperties:
    @given(pair_lists(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_all_gates_preserved_as_multiset(self, pairs, seed):
        result = parallelize(pairs, rng=np.random.default_rng(seed))
        assert sorted(result.ordered_pairs) == sorted(pairs)

    @given(pair_lists(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_no_layer_reuses_a_qubit(self, pairs, seed):
        result = parallelize(pairs, rng=np.random.default_rng(seed))
        result.validate()

    @given(pair_lists())
    @settings(max_examples=80, deadline=None)
    def test_layer_count_at_least_moq(self, pairs):
        result = parallelize(pairs)
        assert result.num_layers >= max_operations_per_qubit(pairs)

    @given(pair_lists())
    @settings(max_examples=80, deadline=None)
    def test_layer_count_at_most_gate_count(self, pairs):
        result = parallelize(pairs)
        assert result.num_layers <= max(len(pairs), 0) or not pairs

    @given(pair_lists(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_packing_limit_respected(self, pairs, limit):
        result = parallelize(pairs, packing_limit=limit)
        assert all(len(layer) <= limit for layer in result.layers)
        assert sorted(result.ordered_pairs) == sorted(pairs)

    @given(pair_lists())
    @settings(max_examples=60, deadline=None)
    def test_no_empty_layers_emitted(self, pairs):
        result = parallelize(pairs)
        assert all(layer for layer in result.layers)


class TestFillSingleLayerProperties:
    @given(pair_lists())
    @settings(max_examples=60, deadline=None)
    def test_partition(self, pairs):
        layer, rest = fill_single_layer(pairs)
        assert sorted(layer + rest) == sorted(pairs)

    @given(pair_lists())
    @settings(max_examples=60, deadline=None)
    def test_layer_disjoint(self, pairs):
        layer, _ = fill_single_layer(pairs)
        used = [q for pair in layer for q in pair]
        assert len(used) == len(set(used))

    @given(pair_lists())
    @settings(max_examples=60, deadline=None)
    def test_maximality(self, pairs):
        """First-fit produces a maximal layer: nothing left in `rest` could
        still fit."""
        layer, rest = fill_single_layer(pairs)
        used = {q for pair in layer for q in pair}
        for a, b in rest:
            assert a in used or b in used
