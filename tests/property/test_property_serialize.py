"""Property-based round-trip tests for compiled-result serialisation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_with_method
from repro.compiler.serialize import from_json, to_json
from repro.hardware import ring_device
from repro.qaoa import MaxCutProblem


@st.composite
def compiled_results(draw):
    n = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    # Random connected-ish edge set: a cycle plus random chords.
    edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(draw(st.integers(0, 3))):
        a, b = rng.choice(n, size=2, replace=False)
        edges.append((int(min(a, b)), int(max(a, b))))
    problem = MaxCutProblem(n, edges)
    p = draw(st.integers(1, 2))
    gammas = [draw(st.floats(-3.0, 3.0)) for _ in range(p)]
    betas = [draw(st.floats(-1.5, 1.5)) for _ in range(p)]
    method = draw(st.sampled_from(["naive", "qaim", "ip", "ic"]))
    program = problem.to_program(gammas, betas)
    return compile_with_method(
        program, ring_device(8), method, rng=np.random.default_rng(seed)
    )


class TestSerializeRoundTrip:
    @given(compiled_results())
    @settings(max_examples=40, deadline=None)
    def test_instructions_preserved(self, compiled):
        restored = from_json(to_json(compiled))
        assert restored.circuit.instructions == compiled.circuit.instructions

    @given(compiled_results())
    @settings(max_examples=40, deadline=None)
    def test_mappings_and_metrics_preserved(self, compiled):
        restored = from_json(to_json(compiled))
        assert restored.initial_mapping == compiled.initial_mapping
        assert restored.final_mapping == compiled.final_mapping
        assert restored.swap_count == compiled.swap_count
        assert restored.depth() == compiled.depth()
        assert restored.gate_count() == compiled.gate_count()

    @given(compiled_results())
    @settings(max_examples=25, deadline=None)
    def test_double_round_trip_is_stable(self, compiled):
        once = to_json(compiled)
        twice = to_json(from_json(once))
        assert once == twice
