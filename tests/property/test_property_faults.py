"""Property tests: inject → repair always yields a usable calibration.

The contract guarded here is the one the chaos harness relies on: for any
seeded degradation of a clean calibration, ``repair_calibration`` either
returns a :class:`Calibration` whose VIC edge weights are all finite and
positive on a still-connected coupling graph, or raises a clear
:class:`CalibrationError` — never a crash, never a poisoned weight.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    CalibrationError,
    FaultInjector,
    grid_device,
    repair_calibration,
    ring_device,
    uniform_calibration,
)


@st.composite
def fault_recipes(draw):
    return {
        "dead_qubits": draw(st.integers(0, 2)),
        "dead_edges": draw(st.integers(0, 3)),
        "drift_sigma": draw(st.floats(0.0, 0.5)),
        "dropout": draw(st.floats(0.0, 0.4)),
        "nan_entries": draw(st.integers(0, 3)),
        "out_of_range_entries": draw(st.integers(0, 2)),
        "inflate": draw(st.floats(1.0, 10.0)),
    }


def _device(kind):
    return ring_device(8) if kind == "ring" else grid_device(3, 3)


@given(
    kind=st.sampled_from(["ring", "grid"]),
    seed=st.integers(0, 2**16),
    recipe=fault_recipes(),
)
@settings(max_examples=60, deadline=None)
def test_repair_yields_finite_vic_weights_on_connected_graph(
    kind, seed, recipe
):
    cal = uniform_calibration(_device(kind), cnot_error=0.02)
    raw = FaultInjector(seed=seed).degrade(cal, **recipe)
    try:
        result = repair_calibration(raw)
    except CalibrationError:
        return  # explicit refusal is an allowed outcome
    assert result.coupling.is_connected()
    weights = result.calibration.vic_edge_weights()
    assert set(weights) == set(result.coupling.edges)
    for weight in weights.values():
        assert math.isfinite(weight)
        assert weight > 0
    for err in result.calibration.cnot_error.values():
        assert math.isfinite(err)
        assert 0.0 <= err < 1.0


@given(
    seed=st.integers(0, 2**16),
    recipe=fault_recipes(),
)
@settings(max_examples=40, deadline=None)
def test_pruned_edges_are_gone_and_rest_is_intact(seed, recipe):
    device = ring_device(8)
    cal = uniform_calibration(device, cnot_error=0.02)
    raw = FaultInjector(seed=seed).degrade(cal, **recipe)
    try:
        result = repair_calibration(raw)
    except CalibrationError:
        return
    pruned = set(result.pruned_edges)
    for edge in pruned:
        assert not result.coupling.has_edge(*edge)
    assert set(result.coupling.edges) | pruned == set(device.edges)
    assert result.coupling.name == device.name


@given(seed=st.integers(0, 2**16), recipe=fault_recipes())
@settings(max_examples=30, deadline=None)
def test_repair_is_deterministic(seed, recipe):
    cal = uniform_calibration(ring_device(8), cnot_error=0.02)
    raw = FaultInjector(seed=seed).degrade(cal, **recipe)
    try:
        first = repair_calibration(raw)
    except CalibrationError:
        try:
            repair_calibration(raw)
        except CalibrationError:
            return
        raise AssertionError("repair raised once but not twice")
    second = repair_calibration(raw)
    assert first.pruned_edges == second.pruned_edges
    assert first.warnings == second.warnings
    assert first.calibration.cnot_error == second.calibration.cnot_error
