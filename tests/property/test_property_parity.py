"""Property tests for the LHZ parity encoding.

Three independent witnesses pin the encoding down on random small
problems (n <= 6, so everything brute-forces):

* the *decode* is cut-faithful — encoding a classical assignment into
  edge parities and XOR-decoding it back preserves every cut value;
* the analytic ``phase_vector`` evolution reproduces the gate-by-gate
  simulation of the abstract parity circuit exactly;
* the compiled physical circuit's expectation, brute-forced from the
  raw statevector with explicit decode, matches the fast-path ``r0``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    ParityLayout,
    build_parity_circuit,
    compile_with_method,
)
from repro.compiler.parity import (
    parity_constraint_angle,
    parity_decode_indices,
    parity_field_angle,
)
from repro.hardware import get_device
from repro.qaoa.problems import Level, MaxCutProblem, QAOAProgram
from repro.sim import StatevectorSimulator
from repro.sim.fastpath import evaluate_fast, parity_plan

ATOL = 1e-9


@st.composite
def small_problems(draw):
    """MaxCut problems with at most 6 nodes and 7 edges (K <= 7)."""
    n = draw(st.integers(3, 6))
    edge_pool = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(edge_pool), min_size=2, max_size=7, unique=True
        )
    )
    return MaxCutProblem(n, chosen)


@st.composite
def small_programs(draw):
    problem = draw(small_problems())
    p = draw(st.integers(1, 2))
    gammas = [draw(st.floats(-2.0, 2.0, allow_nan=False)) for _ in range(p)]
    betas = [draw(st.floats(-1.0, 1.0, allow_nan=False)) for _ in range(p)]
    return problem, problem.to_program(gammas, betas)


def _fast_parity_state(program, layout, strength):
    """Analytic parity-basis evolution: |+>^K, then per level the exact
    diagonal block followed by the RX mixers."""
    K = layout.num_slots
    state = np.full(1 << K, 1.0 / np.sqrt(1 << K), dtype=complex)
    phase = layout.phase_vector(strength)
    indices = np.arange(1 << K)
    for level in program.levels:
        state = state * np.exp(-1j * level.gamma * phase)
        half = level.beta  # mixer RX(2*beta) => cos(beta), -i sin(beta)
        for s in range(K):
            flipped = indices ^ (1 << s)
            state = np.cos(half) * state - 1j * np.sin(half) * state[flipped]
    return state


class TestDecodeFaithfulness:
    @given(small_problems())
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_preserves_cut_values(self, problem):
        program = problem.to_program([0.5], [0.3])
        layout = ParityLayout.from_program(program)
        cuts = problem.cut_values()
        slots = {edge: s for s, edge in enumerate(layout.slots)}
        for x in range(1 << problem.num_nodes):
            slot_idx = 0
            for (a, b), s in slots.items():
                if ((x >> a) & 1) ^ ((x >> b) & 1):
                    slot_idx |= 1 << s
            decoded = int(
                parity_decode_indices(np.array([slot_idx]), layout)[0]
            )
            assert cuts[decoded] == cuts[x]


class TestPhaseVectorExactness:
    @given(small_programs())
    @settings(max_examples=40, deadline=None)
    def test_analytic_evolution_matches_gate_simulation(self, case):
        problem, program = case
        layout = ParityLayout.from_program(program)
        strength = 2.0
        circuit = build_parity_circuit(program, layout, strength, measure=False)
        gate_state = StatevectorSimulator().run(circuit)
        fast_state = _fast_parity_state(program, layout, strength)
        assert np.max(np.abs(gate_state - fast_state)) < ATOL

    @given(small_problems())
    @settings(max_examples=40, deadline=None)
    def test_phase_vector_brute_force(self, problem):
        """phase_vector against its defining sum, term by term."""
        program = problem.to_program([0.7], [0.35])
        layout = ParityLayout.from_program(program)
        strength = 1.7
        K = layout.num_slots
        expected = np.zeros(1 << K)
        for y in range(1 << K):
            total = 0.0
            for s, weight in enumerate(layout.weights):
                sign = 1.0 - 2.0 * ((y >> s) & 1)
                # RZ(-γ w) on slot s is exp(-iγ · (-w/2)·s_s(y)) up to
                # global phase — the angle helpers pin the convention
                total += (parity_field_angle(1.0, weight) / 2.0) * sign
            for cycle in layout.constraints:
                prod = 1.0
                for s in cycle:
                    prod *= 1.0 - 2.0 * ((y >> s) & 1)
                total += (
                    parity_constraint_angle(1.0, strength) / 2.0
                ) * prod
            expected[y] = total
        np.testing.assert_allclose(
            layout.phase_vector(strength), expected, atol=ATOL
        )


class TestCompiledExpectation:
    @given(small_programs())
    @settings(max_examples=12, deadline=None)
    def test_brute_force_expectation_matches_fastpath(self, case):
        problem, program = case
        layout = ParityLayout.from_program(program)
        coupling = get_device("ibmq_16_melbourne")
        compiled = compile_with_method(
            program, coupling, "parity", rng=np.random.default_rng(0)
        )
        assert parity_plan(compiled).ok
        # brute force: simulate the physical circuit, marginalise onto
        # the slot qubits, decode, take the expectation directly
        probs = StatevectorSimulator().probabilities(
            compiled.circuit.only_unitary()
        )
        K = layout.num_slots
        mapping = compiled.final_mapping
        slot_probs = np.zeros(1 << K)
        for idx in range(1 << coupling.num_qubits):
            slot_idx = 0
            for s in range(K):
                if (idx >> mapping[s]) & 1:
                    slot_idx |= 1 << s
            slot_probs[slot_idx] += probs[idx]
        decode = parity_decode_indices(np.arange(1 << K), layout)
        cut_values = problem.cut_values()
        expectation = float(np.dot(slot_probs, cut_values[decode]))
        r0_brute = expectation / max(cut_values.max(), 1e-12)
        fast = evaluate_fast(compiled, mode="exact")
        assert fast.fastpath
        assert abs(fast.r0 - r0_brute) < 1e-8


class TestVerifierTamperRejection:
    """parity_plan must refuse circuits that are not the exact parity
    program — perturbed angles, dropped gadget gates, missing mixers."""

    def _compiled(self):
        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        return compile_with_method(
            problem.to_program([0.7], [0.35]),
            get_device("ibmq_16_melbourne"),
            "parity",
            rng=np.random.default_rng(0),
        )

    def _tampered(self, compiled, mutate):
        import dataclasses

        from repro.circuits import QuantumCircuit

        instructions = mutate(list(compiled.circuit.instructions))
        circuit = QuantumCircuit(
            compiled.circuit.num_qubits, name="tampered"
        )
        circuit.extend(instructions)
        return dataclasses.replace(compiled, circuit=circuit)

    def test_accepts_untampered(self):
        assert parity_plan(self._compiled()).ok

    def test_rejects_perturbed_rz_angle(self):
        import dataclasses

        compiled = self._compiled()

        def bump_first_rz(instructions):
            for i, inst in enumerate(instructions):
                if inst.name == "rz":
                    instructions[i] = dataclasses.replace(
                        inst, params=(inst.params[0] + 1e-3,)
                    )
                    break
            return instructions

        assert not parity_plan(
            self._tampered(compiled, bump_first_rz)
        ).ok

    def test_rejects_dropped_cnot(self):
        compiled = self._compiled()

        def drop_first_cnot(instructions):
            for i, inst in enumerate(instructions):
                if inst.name == "cnot":
                    del instructions[i]
                    break
            return instructions

        assert not parity_plan(
            self._tampered(compiled, drop_first_cnot)
        ).ok

    def test_rejects_dropped_mixer(self):
        compiled = self._compiled()

        def drop_last_rx(instructions):
            for i in range(len(instructions) - 1, -1, -1):
                if instructions[i].name == "rx":
                    del instructions[i]
                    break
            return instructions

        assert not parity_plan(
            self._tampered(compiled, drop_last_rx)
        ).ok


class TestLayoutRejections:
    def test_linear_fields_rejected(self):
        program = QAOAProgram(
            num_qubits=3,
            edges=[(0, 1, 1.0), (1, 2, 1.0)],
            levels=[Level(0.5, 0.3)],
            linear={0: 0.7},
        )
        try:
            ParityLayout.from_program(program)
        except ValueError as exc:
            assert "linear" in str(exc) or "field" in str(exc)
        else:  # pragma: no cover - defends the rejection contract
            raise AssertionError("linear fields must be rejected")

    def test_edge_free_program_rejected(self):
        program = QAOAProgram(
            num_qubits=2, edges=[], levels=[Level(0.5, 0.3)]
        )
        try:
            ParityLayout.from_program(program)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("edge-free programs must be rejected")
