"""Property-based tests for routing and mapping invariants."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.mapping import Mapping
from repro.compiler.routing import route_pair
from repro.hardware.coupling import CouplingGraph


@st.composite
def connected_devices(draw, min_qubits=3, max_qubits=10):
    n = draw(st.integers(min_qubits, max_qubits))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    # Random tree (always connected) plus random extra edges.
    rng = np.random.default_rng(seed)
    g = nx.random_labeled_tree(n, seed=int(rng.integers(1 << 30)))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a, b = rng.choice(n, size=2, replace=False)
        g.add_edge(int(a), int(b))
    return CouplingGraph(n, list(g.edges()))


class TestRoutingProperties:
    @given(connected_devices(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_route_ends_adjacent(self, device, data):
        n = device.num_qubits
        k = data.draw(st.integers(2, n))
        mapping = Mapping.trivial(k, n)
        a = data.draw(st.integers(0, k - 1))
        b = data.draw(st.integers(0, k - 1).filter(lambda x: x != a))
        route_pair(device, mapping, a, b)
        assert device.has_edge(mapping.physical(a), mapping.physical(b))

    @given(connected_devices(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_swap_count_bounded_by_distance(self, device, data):
        n = device.num_qubits
        mapping = Mapping.trivial(n, n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        dist = device.distance(a, b)
        result = route_pair(device, mapping, a, b)
        assert result.num_swaps == dist - 1

    @given(connected_devices(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_mapping_remains_injective(self, device, data):
        n = device.num_qubits
        mapping = Mapping.trivial(n, n)
        for _ in range(data.draw(st.integers(1, 5))):
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
            route_pair(device, mapping, a, b)
        values = list(mapping.as_dict().values())
        assert len(set(values)) == n

    @given(connected_devices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_swaps_respect_coupling(self, device, data):
        n = device.num_qubits
        mapping = Mapping.trivial(n, n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        result = route_pair(device, mapping, a, b)
        for swap in result.swaps:
            assert device.has_edge(*swap.qubits)

    @given(connected_devices(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_untouched_logicals_unmoved_except_on_path(self, device, data):
        """Routing only relocates qubits sitting on the chosen path."""
        n = device.num_qubits
        mapping = Mapping.trivial(n, n)
        before = mapping.as_dict()
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        result = route_pair(device, mapping, a, b)
        touched = {q for swap in result.swaps for q in swap.qubits}
        for logical, phys in before.items():
            if phys not in touched:
                assert mapping.physical(logical) == phys
