"""Property tests for the odd/even SWAP-network method.

The network's defining combinatorial claim: starting from *any* chain
order of ``n`` elements, the ``n``-layer odd/even brick schedule brings
every unordered pair adjacent exactly once.  The compiled circuit rides
on that claim — depth stays O(n) regardless of problem density, every
program edge's CPHASE lands exactly once per level, and the commutation
verifier accepts the result wholesale.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_with_method, find_linear_chain
from repro.compiler.swap_network import network_meetings
from repro.hardware import get_device, linear_device, ring_device
from repro.qaoa.problems import Level, QAOAProgram
from repro.sim.fastpath import evaluate_fast, fastpath_plan


@st.composite
def chain_orders(draw):
    n = draw(st.integers(2, 12))
    return draw(st.permutations(range(n)))


@st.composite
def chain_problems(draw):
    """Random-weight MaxCut programs on 3..7 qubits (dense allowed)."""
    n = draw(st.integers(3, 7))
    edge_pool = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(edge_pool),
            min_size=1,
            max_size=len(edge_pool),
            unique=True,
        )
    )
    edges = [
        (a, b, draw(st.floats(0.1, 3.0, allow_nan=False)))
        for a, b in chosen
    ]
    p = draw(st.integers(1, 2))
    levels = [
        Level(
            draw(st.floats(-2.0, 2.0, allow_nan=False)),
            draw(st.floats(-1.0, 1.0, allow_nan=False)),
        )
        for _ in range(p)
    ]
    return QAOAProgram(num_qubits=n, edges=edges, levels=levels)


class TestMeetingSchedule:
    @given(chain_orders())
    @settings(max_examples=120, deadline=None)
    def test_every_pair_meets_exactly_once(self, order):
        n = len(order)
        layers = network_meetings(order)
        assert len(layers) == n
        met = [
            frozenset((a, b))
            for bricks in layers
            for _, a, b in bricks
        ]
        assert len(met) == n * (n - 1) // 2
        assert len(set(met)) == len(met)

    @given(chain_orders())
    @settings(max_examples=60, deadline=None)
    def test_layer_positions_follow_brick_parity(self, order):
        for t, bricks in enumerate(network_meetings(order)):
            positions = [i for i, _, _ in bricks]
            assert all(i % 2 == t % 2 for i in positions)
            # bricks are disjoint: consecutive positions differ by >= 2
            assert positions == sorted(positions)
            assert all(
                b - a >= 2 for a, b in zip(positions, positions[1:])
            )


class TestCompiledNetwork:
    @given(chain_problems())
    @settings(max_examples=25, deadline=None)
    def test_verifier_accepts_and_depth_stays_linear(self, program):
        n = program.num_qubits
        compiled = compile_with_method(
            program,
            linear_device(n),
            "swap_network",
            rng=np.random.default_rng(0),
        )
        plan = fastpath_plan(compiled)
        assert plan.ok, plan.reason
        trace = {r.name: r for r in compiled.pass_trace}
        layers = trace["route/swap_network"].info["brick_layers"]
        assert len(layers) == program.p
        assert all(0 <= used <= n for used in layers)

    @given(chain_problems())
    @settings(max_examples=15, deadline=None)
    def test_every_edge_cphase_once_per_level(self, program):
        compiled = compile_with_method(
            program,
            linear_device(program.num_qubits),
            "swap_network",
            rng=np.random.default_rng(1),
        )
        cphases = sum(
            1
            for inst in compiled.circuit.instructions
            if inst.name == "cphase"
        )
        assert cphases == len(program.edges) * program.p

    @given(chain_problems())
    @settings(max_examples=10, deadline=None)
    def test_fast_and_fallback_r0_agree(self, program):
        compiled = compile_with_method(
            program,
            linear_device(program.num_qubits),
            "swap_network",
            rng=np.random.default_rng(2),
        )
        fast = evaluate_fast(compiled, mode="exact")
        slow = evaluate_fast(compiled, mode="exact", use_fastpath=False)
        assert fast.fastpath and not slow.fastpath
        assert abs(fast.r0 - slow.r0) < 1e-10


class TestLinearChainExtraction:
    @pytest.mark.parametrize(
        "device_name,length",
        [
            ("ibmq_16_melbourne", 10),
            ("ibmq_20_tokyo", 10),
            ("ibmq_20_tokyo", 16),
        ],
    )
    def test_chain_is_a_coupled_simple_path(self, device_name, length):
        coupling = get_device(device_name)
        chain = find_linear_chain(coupling, length)
        assert len(chain) == length
        assert len(set(chain)) == length
        for a, b in zip(chain, chain[1:]):
            assert coupling.has_edge(a, b)

    def test_ring_device_full_chain(self):
        coupling = ring_device(8)
        chain = find_linear_chain(coupling, 8)
        assert len(set(chain)) == 8
        for a, b in zip(chain, chain[1:]):
            assert coupling.has_edge(a, b)

    def test_impossible_chain_raises(self):
        with pytest.raises(ValueError):
            find_linear_chain(ring_device(4), 5)
