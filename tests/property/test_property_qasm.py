"""Property-based tests: QASM round-trip and timing-model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, circuit_depth
from repro.circuits.qasm import dumps, loads
from repro.circuits.timing import (
    DurationModel,
    decoherence_factor,
    execution_time,
    schedule,
)

NUM_QUBITS = 4

_single = st.sampled_from(["h", "x", "rx", "rz", "u1", "u2", "u3"])
_double = st.sampled_from(["cnot", "cz", "swap", "cphase", "cu1"])
_PARAM_COUNT = {"rx": 1, "rz": 1, "u1": 1, "u2": 2, "u3": 3, "cphase": 1, "cu1": 1}


@st.composite
def random_circuits(draw, max_gates=15):
    qc = QuantumCircuit(NUM_QUBITS)
    for _ in range(draw(st.integers(0, max_gates))):
        if draw(st.booleans()):
            name = draw(_single)
            q = draw(st.integers(0, NUM_QUBITS - 1))
            params = tuple(
                draw(st.floats(-math.pi, math.pi))
                for _ in range(_PARAM_COUNT.get(name, 0))
            )
            qc.add(name, (q,), params)
        else:
            name = draw(_double)
            a = draw(st.integers(0, NUM_QUBITS - 1))
            b = draw(st.integers(0, NUM_QUBITS - 1).filter(lambda x: x != a))
            params = tuple(
                draw(st.floats(-math.pi, math.pi))
                for _ in range(_PARAM_COUNT.get(name, 0))
            )
            qc.add(name, (a, b), params)
    if draw(st.booleans()):
        qc.measure_all()
    return qc


class TestQasmRoundTrip:
    @given(random_circuits())
    @settings(max_examples=80, deadline=None)
    def test_loads_dumps_identity(self, qc):
        parsed = loads(dumps(qc))
        assert parsed.num_qubits == qc.num_qubits
        assert parsed.instructions == qc.instructions

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_dumps_is_deterministic(self, qc):
        assert dumps(qc) == dumps(qc)


class TestTimingInvariants:
    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_schedule_respects_dependencies(self, qc):
        gates = schedule(qc)
        busy_until = {}
        for g in gates:
            for q in g.instruction.qubits:
                assert g.start >= busy_until.get(q, 0.0) - 1e-9
                busy_until[q] = g.end

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_execution_time_bounds(self, qc):
        model = DurationModel()
        total = execution_time(qc, model)
        serial = sum(model.duration(inst) for inst in qc if not inst.is_directive)
        assert 0.0 <= total <= serial + 1e-9

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_execution_time_at_least_depth_times_min_duration(self, qc):
        # Using a uniform model, time == depth * unit.
        uniform = DurationModel(
            single_qubit=1.0, virtual=1.0, two_qubit=1.0, swap=1.0, measure=1.0
        )
        assert execution_time(qc, uniform) == circuit_depth(qc)

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_decoherence_factor_in_unit_interval(self, qc):
        factor = decoherence_factor(qc)
        assert 0.0 < factor <= 1.0
