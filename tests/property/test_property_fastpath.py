"""Property tests for the vectorized fast-path evaluation engine.

The engine's whole claim is *exactness*: the diagonal-multiply QAOA
simulation (:func:`repro.sim.fastpath.qaoa_statevector`) and the verified
compiled-circuit path must agree with the gate-by-gate
:class:`~repro.sim.statevector.StatevectorSimulator` to machine precision
— global phase included — across random graphs, levels, and angles, and
the sampled evaluation must be *bit-identical* to the legacy
``evaluate_arg`` procedure (same RNG stream, same draws).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_with_method
from repro.hardware.devices import get_device, melbourne_calibration
from repro.qaoa import build_qaoa_circuit, evaluate_arg
from repro.qaoa.problems import Level, MaxCutProblem, QAOAProgram
from repro.sim import NoiseModel, NoisySimulator, StatevectorSimulator
from repro.sim.fastpath import (
    cost_diagonal,
    evaluate_fast,
    fastpath_plan,
    qaoa_statevector,
)

ATOL = 1e-9


@st.composite
def programs(draw):
    n = draw(st.integers(2, 7))
    edge_pool = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(
        st.lists(
            st.sampled_from(edge_pool), min_size=1, max_size=10, unique=True
        )
    )
    weights = [draw(st.floats(0.1, 4.0, allow_nan=False)) for _ in chosen]
    p = draw(st.integers(1, 3))
    levels = [
        Level(
            draw(st.floats(-3.0, 3.0, allow_nan=False)),
            draw(st.floats(-1.5, 1.5, allow_nan=False)),
        )
        for _ in range(p)
    ]
    edges = [(a, b, w) for (a, b), w in zip(chosen, weights)]
    return QAOAProgram(num_qubits=n, edges=edges, levels=levels)


class TestStatevectorParity:
    @given(programs())
    @settings(max_examples=50, deadline=None)
    def test_logical_statevector_matches_gate_by_gate(self, program):
        fast = qaoa_statevector(program)
        circuit = build_qaoa_circuit(program, measure=False)
        slow = StatevectorSimulator().run(circuit)
        assert np.max(np.abs(fast - slow)) < ATOL

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_expectation_matches_gate_by_gate(self, program):
        diag = cost_diagonal(program)
        fast = float(np.dot(np.abs(qaoa_statevector(program)) ** 2, diag.cut))
        circuit = build_qaoa_circuit(program, measure=False)
        probs = StatevectorSimulator().probabilities(circuit)
        slow = float(np.dot(probs, diag.cut))
        assert abs(fast - slow) < ATOL


def _compiled_cases():
    """Deterministic compiled cases over all methods/devices that force
    nontrivial SWAP routing (permuted final mappings)."""
    cases = []
    for seed, (device, method) in enumerate(
        [
            ("ibmq_16_melbourne", "qaim"),
            ("ibmq_16_melbourne", "ip"),
            ("ibmq_16_melbourne", "ic"),
            ("ibmq_16_melbourne", "vic"),
            ("ibmq_20_tokyo", "ic"),
            ("linear_4", "qaim"),
        ]
    ):
        rng = np.random.default_rng(seed)
        n = 4 if device == "linear_4" else 8
        edges = []
        for a in range(n):
            for b in range(a + 1, n):
                if rng.random() < 0.6:
                    edges.append((a, b, float(rng.uniform(0.2, 2.0))))
        if not edges:
            edges = [(0, 1, 1.0)]
        problem = MaxCutProblem(n, edges)
        program = QAOAProgram(
            num_qubits=n,
            edges=edges,
            levels=[Level(0.9, 0.4), Level(-0.5, 0.7)],
        )
        calibration = (
            melbourne_calibration() if device == "ibmq_16_melbourne" else None
        )
        compiled = compile_with_method(
            program,
            get_device(device),
            method,
            calibration=calibration,
            rng=rng,
        )
        cases.append((problem, program, compiled))
    return cases


class TestCompiledPath:
    def test_all_compiled_cases_verify(self):
        for _, _, compiled in _compiled_cases():
            plan = fastpath_plan(compiled)
            assert plan.ok, plan.reason

    def test_compiled_exact_matches_fallback(self):
        for problem, _, compiled in _compiled_cases():
            if compiled.circuit.num_qubits > 16:
                continue
            noise = NoiseModel.from_calibration(melbourne_calibration())
            if compiled.circuit.num_qubits != 15:
                noise = NoiseModel.ideal(compiled.circuit.num_qubits)
            fast = evaluate_fast(
                compiled,
                noise=noise,
                trajectories=4,
                rng=np.random.default_rng(5),
                mode="exact",
            )
            slow = evaluate_fast(
                compiled,
                noise=noise,
                trajectories=4,
                rng=np.random.default_rng(5),
                mode="exact",
                use_fastpath=False,
            )
            assert fast.fastpath and not slow.fastpath
            assert abs(fast.r0 - slow.r0) < ATOL
            assert abs(fast.rh - slow.rh) < ATOL

    def test_compiled_sampled_bit_identical_to_legacy(self):
        calibration = melbourne_calibration()
        noisy = NoisySimulator(
            NoiseModel.from_calibration(calibration), trajectories=6
        )
        ideal = StatevectorSimulator()
        for problem, _, compiled in _compiled_cases():
            if compiled.circuit.num_qubits != 15:
                continue
            fast = evaluate_arg(
                compiled,
                problem,
                ideal,
                noisy,
                shots=512,
                rng=np.random.default_rng(17),
                fast=True,
            )
            slow = evaluate_arg(
                compiled,
                problem,
                ideal,
                noisy,
                shots=512,
                rng=np.random.default_rng(17),
                fast=False,
            )
            # Same RNG stream, same draws: agreement is limited only by
            # floating-point summation order in the means, not sampling.
            assert abs(fast.r0 - slow.r0) < 1e-12
            assert abs(fast.rh - slow.rh) < 1e-12
            assert abs(fast.arg - slow.arg) < ATOL
