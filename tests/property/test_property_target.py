"""Property tests for the Target layer's memoization contract.

A memoized oracle is only correct if it is *observationally identical* to
recomputing from scratch — for any device, any calibration, any access
order, and in particular after the two state transitions that historically
invalidated derived tables:

* calibration repair (``repair_calibration`` pruning dead couplers, i.e. a
  *different* coupling graph than the raw feed), and
* VIC degradation (an unusable reliability table falling back to hop
  distances, with the explanatory warnings preserved verbatim).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.vic import resolve_vic_distances
from repro.hardware.calibration import Calibration
from repro.hardware.coupling import CouplingGraph
from repro.hardware.faults import (
    CalibrationValidator,
    FaultInjector,
    RawCalibration,
    repair_calibration,
)
from repro.hardware.target import Target, intern_target


@st.composite
def couplings(draw):
    """Connected random device: spanning tree plus extra chords."""
    n = draw(st.integers(3, 9))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    edges = set()
    for b in range(1, n):
        edges.add((int(rng.integers(0, b)), b))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a, b = sorted(rng.choice(n, size=2, replace=False).tolist())
        edges.add((int(a), int(b)))
    return CouplingGraph(n, sorted(edges), name=f"rand{n}")


@st.composite
def calibrations(draw):
    coupling = draw(couplings())
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    cnot_error = {
        e: float(rng.uniform(1e-3, 0.2)) for e in sorted(coupling.edges)
    }
    return Calibration(coupling=coupling, cnot_error=cnot_error)


class _UnusableCalibration:
    """Stand-in whose VIC table always fails to resolve."""

    def __init__(self, coupling):
        self.coupling = coupling

    def vic_distance_matrix(self):
        raise ValueError("synthetic calibration failure")


class TestOracleEqualsRecomputation:
    @given(couplings())
    @settings(max_examples=40, deadline=None)
    def test_hop_and_connectivity_oracles(self, coupling):
        target = Target(coupling)
        fresh = CouplingGraph(
            coupling.num_qubits, sorted(coupling.edges), name=coupling.name
        )
        np.testing.assert_array_equal(
            target.hop_distances(), fresh.distance_matrix()
        )
        for radius in (1, 2, 3):
            assert dict(target.connectivity_profile(radius)) == (
                fresh.connectivity_profile(radius=radius)
            )
        for q in range(coupling.num_qubits):
            assert target.neighbourhood(q, 2) == frozenset(
                p
                for p in range(fresh.num_qubits)
                if p != q and fresh.distance(q, p) <= 2
            )

    @given(calibrations())
    @settings(max_examples=30, deadline=None)
    def test_vic_oracles(self, calibration):
        target = Target(calibration.coupling, calibration)
        fresh = Calibration(
            coupling=calibration.coupling,
            cnot_error=dict(calibration.cnot_error),
        )
        # First access memoizes; the memo must equal a fresh recomputation.
        np.testing.assert_allclose(
            target.vic_distance_matrix(), fresh.vic_distance_matrix()
        )
        assert dict(target.vic_edge_weights()) == {
            e: 1.0 / fresh.cphase_success(*e)
            for e in sorted(calibration.coupling.edges)
        }
        matrix, warnings = target.vic_distances()
        ref_matrix, ref_warnings = resolve_vic_distances(fresh)
        np.testing.assert_allclose(matrix, ref_matrix)
        assert warnings == ref_warnings == []
        # Repeated access returns the identical memoized matrix.
        assert target.vic_distances()[0] is matrix

    @given(couplings(), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_weighted_and_path_oracles(self, coupling, seed):
        rng = np.random.default_rng(seed)
        weights = {
            e: float(rng.uniform(0.5, 3.0)) for e in sorted(coupling.edges)
        }
        target = Target(coupling)
        np.testing.assert_allclose(
            target.weighted_distances(weights),
            coupling.weighted_distance_matrix(weights),
        )
        hop = coupling.distance_matrix()
        for a in range(coupling.num_qubits):
            for b in range(coupling.num_qubits):
                path = target.shortest_path(a, b)
                assert len(path) == hop[a, b] + 1
                assert path[0] == a and path[-1] == b
                for u, v in zip(path, path[1:]):
                    assert coupling.has_edge(u, v)


class TestAfterRepair:
    @given(calibrations(), st.integers(0, 2**16), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_repaired_target_oracles_match_repaired_content(
        self, calibration, seed, dead_edges
    ):
        raw = FaultInjector(seed=seed).degrade(
            calibration,
            dead_edges=dead_edges,
            dropout=0.1,
            inflate=1.5,
        )
        repair = repair_calibration(
            raw, validator=CalibrationValidator(max_age_days=None)
        )
        target = intern_target(
            repair.coupling,
            repair.calibration,
            warnings=tuple(repair.warnings),
        )
        # The target wraps the *repaired* device, not the raw feed.
        assert target.num_qubits == repair.coupling.num_qubits
        for edge in repair.pruned_edges:
            assert not target.coupling.has_edge(*edge)
        # Every memoized oracle equals recomputation on content-equal
        # rebuilds of the repaired objects.
        fresh_coupling = CouplingGraph(
            repair.coupling.num_qubits,
            sorted(repair.coupling.edges),
            name=repair.coupling.name,
        )
        np.testing.assert_array_equal(
            target.hop_distances(), fresh_coupling.distance_matrix()
        )
        fresh_cal = Calibration(
            coupling=fresh_coupling,
            cnot_error=dict(repair.calibration.cnot_error),
        )
        np.testing.assert_allclose(
            target.vic_distance_matrix(), fresh_cal.vic_distance_matrix()
        )
        # Repair provenance feeds the fingerprint: a degraded target never
        # aliases the clean target for the same raw device.
        clean = intern_target(repair.coupling, repair.calibration)
        if repair.warnings:
            assert clean is not target
            assert clean.fingerprint != target.fingerprint
        else:
            assert clean is target

    @given(calibrations(), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_interning_is_content_stable_across_instances(
        self, calibration, seed
    ):
        raw = FaultInjector(seed=seed).degrade(calibration, inflate=1.2)
        validator = CalibrationValidator(max_age_days=None)
        first = repair_calibration(raw, validator=validator)
        second = repair_calibration(_clone_raw(raw), validator=validator)
        a = intern_target(
            first.coupling, first.calibration, warnings=tuple(first.warnings)
        )
        b = intern_target(
            second.coupling,
            second.calibration,
            warnings=tuple(second.warnings),
        )
        assert a is b


def _clone_raw(raw: RawCalibration) -> RawCalibration:
    return RawCalibration(
        coupling=raw.coupling,
        cnot_error=dict(raw.cnot_error),
        single_qubit_error=dict(raw.single_qubit_error),
        readout_error=dict(raw.readout_error),
        timestamp=raw.timestamp,
    )


class TestDegradedFallback:
    @given(couplings())
    @settings(max_examples=25, deadline=None)
    def test_fallback_matches_resolution_and_preserves_warnings(
        self, coupling
    ):
        stub = _UnusableCalibration(coupling)
        target = Target(coupling, stub)
        matrix, warnings = target.vic_distances()
        ref_matrix, ref_warnings = resolve_vic_distances(
            _UnusableCalibration(coupling)
        )
        assert matrix is None and ref_matrix is None
        assert warnings == ref_warnings
        assert len(warnings) == 1
        assert "falling back to hop distances" in warnings[0]
        # Memoized: the fallback verdict and warnings survive re-access
        # unchanged, and routing degrades to hop distances.
        again_matrix, again_warnings = target.vic_distances()
        assert again_matrix is None and again_warnings == warnings
        assert target.routing_distances("vic") is None
        assert target.shortest_path(0, coupling.num_qubits - 1, "vic") == (
            target.shortest_path(0, coupling.num_qubits - 1, "hop")
        )
