"""Property-based tests for MaxCut cost functions and the analytic formula."""

import math

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.analytic import analytic_expectation
from repro.qaoa.optimizer import qaoa_expectation
from repro.qaoa.problems import MaxCutProblem


@st.composite
def problems(draw, max_nodes=7):
    n = draw(st.integers(2, max_nodes))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    for _ in range(50):
        g = nx.erdos_renyi_graph(n, 0.5, seed=int(rng.integers(1 << 30)))
        if g.number_of_edges() > 0:
            return MaxCutProblem.from_graph(g)
    raise AssertionError("unreachable")


class TestCutFunctionProperties:
    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_complement_symmetry(self, problem):
        table = problem.cut_values()
        n = problem.num_nodes
        full = 2 ** n - 1
        for idx in range(2 ** n):
            assert table[idx] == table[full ^ idx]

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, problem):
        table = problem.cut_values()
        assert table.min() >= 0.0
        assert table.max() <= problem.total_weight() + 1e-9

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_all_zeros_cuts_nothing(self, problem):
        assert problem.cut_value("0" * problem.num_nodes) == 0.0

    @given(problems())
    @settings(max_examples=60, deadline=None)
    def test_max_cut_at_least_half_the_edges(self, problem):
        # A classic fact: the max cut is always >= half the total weight.
        assert problem.max_cut_value() >= problem.total_weight() / 2.0

    @given(problems(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_scalar_matches_table(self, problem, seed):
        rng = np.random.default_rng(seed)
        idx = int(rng.integers(2 ** problem.num_nodes))
        bits = format(idx, f"0{problem.num_nodes}b")
        assert problem.cut_value(bits) == problem.cut_values()[idx]


class TestAnalyticFormulaProperties:
    @given(
        problems(max_nodes=6),
        st.floats(-math.pi, math.pi),
        st.floats(-math.pi / 2, math.pi / 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_analytic_matches_simulator_everywhere(self, problem, gamma, beta):
        analytic = analytic_expectation(problem, gamma, beta)
        simulated = qaoa_expectation(problem, [gamma], [beta])
        assert abs(analytic - simulated) < 1e-8

    @given(problems(max_nodes=6), st.floats(-math.pi, math.pi))
    @settings(max_examples=30, deadline=None)
    def test_beta_zero_gives_half_edges(self, problem, gamma):
        # With beta = 0 the mixer is identity and measurement in the
        # computational basis sees |+...+>: expectation = |E|/2.
        value = analytic_expectation(problem, gamma, 0.0)
        assert abs(value - len(problem.edges) / 2.0) < 1e-9
