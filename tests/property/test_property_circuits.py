"""Property-based tests for the circuit IR and basis lowering."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    QuantumCircuit,
    asap_layers,
    circuit_depth,
    decompose_to_basis,
    layer_qubit_sets,
    two_qubit_depth,
)
from repro.sim import StatevectorSimulator

from ..conftest import assert_equal_up_to_global_phase, circuit_unitary

NUM_QUBITS = 4

_single = st.sampled_from(["h", "x", "rx", "rz", "ry"])
_double = st.sampled_from(["cnot", "cz", "swap", "cphase"])


@st.composite
def random_circuits(draw, max_gates=20, num_qubits=NUM_QUBITS):
    qc = QuantumCircuit(num_qubits)
    n_gates = draw(st.integers(0, max_gates))
    for _ in range(n_gates):
        if draw(st.booleans()):
            name = draw(_single)
            q = draw(st.integers(0, num_qubits - 1))
            params = (
                (draw(st.floats(-math.pi, math.pi)),)
                if name in ("rx", "rz", "ry")
                else ()
            )
            qc.add(name, (q,), params)
        else:
            name = draw(_double)
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 1).filter(lambda x: x != a))
            params = (
                (draw(st.floats(-math.pi, math.pi)),)
                if name == "cphase"
                else ()
            )
            qc.add(name, (a, b), params)
    return qc


class TestLayeringInvariants:
    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_depth_equals_layer_count(self, qc):
        assert circuit_depth(qc) == len(asap_layers(qc))

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_layers_partition_all_gates(self, qc):
        layers = asap_layers(qc)
        total = sum(len(layer) for layer in layers)
        assert total == qc.gate_count()

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_layer_qubits_disjoint(self, qc):
        for layer, qubits in zip(
            asap_layers(qc), layer_qubit_sets(asap_layers(qc))
        ):
            used = [q for inst in layer for q in inst.qubits]
            assert len(used) == len(set(used))

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_depth_bounds(self, qc):
        depth = circuit_depth(qc)
        assert two_qubit_depth(qc) <= depth <= qc.gate_count()

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_program_order_preserved_per_qubit(self, qc):
        """Within each qubit's timeline, layer indices must be increasing in
        program order — ASAP never reorders dependent gates."""
        layers = asap_layers(qc)
        position = {}
        for idx, layer in enumerate(layers):
            for inst in layer:
                position[id(inst)] = idx
        last_layer = {}
        for inst in qc:
            if inst.is_directive:
                continue
            idx = position[id(inst)]
            for q in inst.qubits:
                if q in last_layer:
                    assert idx > last_layer[q]
                last_layer[q] = idx


class TestLoweringInvariants:
    @given(random_circuits(max_gates=10, num_qubits=3))
    @settings(max_examples=30, deadline=None)
    def test_lowering_preserves_unitary(self, qc):
        native = decompose_to_basis(qc)
        assert_equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(native), atol=1e-8
        )

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_lowering_is_idempotent(self, qc):
        once = decompose_to_basis(qc)
        twice = decompose_to_basis(once)
        assert once.instructions == twice.instructions

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_lowering_never_shrinks_two_qubit_count(self, qc):
        # cphase -> 2 cnots, swap -> 3: two-qubit gates only multiply.
        native = decompose_to_basis(qc)
        assert native.num_two_qubit_gates() >= qc.num_two_qubit_gates()


class TestSimulatorInvariants:
    @given(random_circuits(max_gates=12))
    @settings(max_examples=40, deadline=None)
    def test_state_normalised(self, qc):
        sim = StatevectorSimulator()
        state = sim.run(qc)
        assert np.linalg.norm(state) == np.float64(1.0) or abs(
            np.linalg.norm(state) - 1.0
        ) < 1e-9

    @given(random_circuits(max_gates=12), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sampling_matches_probabilities(self, qc, seed):
        sim = StatevectorSimulator()
        probs = sim.probabilities(qc)
        counts = sim.sample_counts(qc, 200, np.random.default_rng(seed))
        assert sum(counts.values()) == 200
        for bits in counts:
            assert probs[int(bits, 2)] > 0
