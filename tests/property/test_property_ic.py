"""Property-based tests for incremental compilation invariants."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.mapping import Mapping
from repro.hardware.coupling import CouplingGraph


@st.composite
def devices_and_blocks(draw):
    """A connected device plus a CPHASE block that fits on it."""
    n = draw(st.integers(4, 9))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    tree = nx.random_labeled_tree(n, seed=int(rng.integers(1 << 30)))
    edges = {tuple(sorted(e)) for e in tree.edges()}
    for _ in range(draw(st.integers(0, n))):
        a, b = rng.choice(n, size=2, replace=False)
        edges.add((int(min(a, b)), int(max(a, b))))
    device = CouplingGraph(n, sorted(edges))

    num_logical = draw(st.integers(2, n))
    count = draw(st.integers(1, 8))
    gates = []
    for _ in range(count):
        a = draw(st.integers(0, num_logical - 1))
        b = draw(st.integers(0, num_logical - 1).filter(lambda x: x != a))
        gates.append((a, b, 0.5))
    return device, num_logical, gates


class TestICInvariants:
    @given(devices_and_blocks(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_every_gate_compiled_exactly_once(self, setup, seed):
        device, num_logical, gates = setup
        compiler = IncrementalCompiler(device, rng=np.random.default_rng(seed))
        mapping = Mapping.trivial(num_logical, device.num_qubits)
        out = QuantumCircuit(device.num_qubits)
        compiler.compile_block(gates, mapping, out)
        assert out.count_ops().get("cphase", 0) == len(gates)

    @given(devices_and_blocks(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_output_is_coupling_compliant(self, setup, seed):
        device, num_logical, gates = setup
        compiler = IncrementalCompiler(device, rng=np.random.default_rng(seed))
        mapping = Mapping.trivial(num_logical, device.num_qubits)
        out = QuantumCircuit(device.num_qubits)
        compiler.compile_block(gates, mapping, out)
        for inst in out:
            if inst.is_two_qubit:
                assert device.has_edge(*inst.qubits)

    @given(devices_and_blocks(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_layers_cover_gate_multiset(self, setup, seed):
        device, num_logical, gates = setup
        compiler = IncrementalCompiler(device, rng=np.random.default_rng(seed))
        mapping = Mapping.trivial(num_logical, device.num_qubits)
        out = QuantumCircuit(device.num_qubits)
        result = compiler.compile_block(gates, mapping, out)
        layered = sorted(
            tuple(sorted(p)) for layer in result.layers for p in layer
        )
        assert layered == sorted(tuple(sorted((a, b))) for a, b, _ in gates)

    @given(devices_and_blocks(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_swap_count_matches_emitted_swaps(self, setup, seed):
        device, num_logical, gates = setup
        compiler = IncrementalCompiler(device, rng=np.random.default_rng(seed))
        mapping = Mapping.trivial(num_logical, device.num_qubits)
        out = QuantumCircuit(device.num_qubits)
        result = compiler.compile_block(gates, mapping, out)
        assert result.swap_count == out.count_ops().get("swap", 0)

    @given(devices_and_blocks(), st.integers(1, 3), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_packing_limit_respected(self, setup, limit, seed):
        device, num_logical, gates = setup
        compiler = IncrementalCompiler(
            device, packing_limit=limit, rng=np.random.default_rng(seed)
        )
        mapping = Mapping.trivial(num_logical, device.num_qubits)
        out = QuantumCircuit(device.num_qubits)
        result = compiler.compile_block(gates, mapping, out)
        assert all(len(layer) <= limit for layer in result.layers)
