"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.hardware import (
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    linear_device,
    melbourne_calibration,
    ring_device,
)
from repro.qaoa import MaxCutProblem


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tokyo():
    return ibmq_20_tokyo()


@pytest.fixture
def melbourne():
    return ibmq_16_melbourne()


@pytest.fixture
def melbourne_cal():
    return melbourne_calibration()


@pytest.fixture
def line4():
    return linear_device(4)


@pytest.fixture
def ring8():
    return ring_device(8)


@pytest.fixture
def k4_problem():
    """Complete graph on 4 nodes (the Figure 1 problem graph is K4 minus
    nothing — a 4-node 3-regular graph IS K4)."""
    return MaxCutProblem(
        4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    )


@pytest.fixture
def toy_fig3_pairs():
    """The Figure 3(c)/5 toy cost Hamiltonian: 7 CPHASEs on 5 qubits."""
    return [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (3, 4)]


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a (small) circuit via simulation of basis states."""
    from repro.sim import StatevectorSimulator

    n = circuit.num_qubits
    sim = StatevectorSimulator()
    dim = 2 ** n
    cols = []
    for i in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[i] = 1.0
        cols.append(sim.run(circuit.only_unitary(), initial_state=basis))
    return np.column_stack(cols)


def assert_equal_up_to_global_phase(u: np.ndarray, v: np.ndarray, atol=1e-9):
    """Assert two unitaries differ only by a global phase."""
    assert u.shape == v.shape
    idx = np.unravel_index(np.argmax(np.abs(u)), u.shape)
    assert abs(v[idx]) > 1e-12, "reference entry vanishes in v"
    phase = u[idx] / v[idx]
    assert abs(abs(phase) - 1.0) < 1e-9
    np.testing.assert_allclose(u, phase * v, atol=atol)
