"""Unit tests for hardware/program profiling — Figure 3(b)/(c) and 4(b)/(c)."""

from repro.circuits import QuantumCircuit
from repro.hardware.devices import ibmq_20_tokyo
from repro.hardware.profiling import (
    hardware_profile,
    interaction_pairs,
    max_operations_per_qubit,
    program_profile,
    rank_cphases,
)

# The Figure 4(a) input CPHASE list.
FIG4_PAIRS = [(1, 5), (2, 3), (1, 4), (2, 4)]


class TestProgramProfile:
    def test_figure4b_qubit_usage(self):
        """Figure 4(b): ops per qubit are 1:2, 2:2, 3:1, 4:2, 5:1."""
        profile = program_profile(FIG4_PAIRS)
        assert profile == {1: 2, 2: 2, 3: 1, 4: 2, 5: 1}

    def test_empty(self):
        assert program_profile([]) == {}

    def test_multiplicity_accumulates(self):
        assert program_profile([(0, 1), (0, 1)]) == {0: 2, 1: 2}


class TestMOQ:
    def test_figure4_moq_is_two(self):
        """Figure 4(b): MOQ = 2 (qubits 1, 2 and 4 have 2 CPHASEs each)."""
        assert max_operations_per_qubit(FIG4_PAIRS) == 2

    def test_empty_is_zero(self):
        assert max_operations_per_qubit([]) == 0

    def test_star_graph(self):
        star = [(0, i) for i in range(1, 6)]
        assert max_operations_per_qubit(star) == 5


class TestRanking:
    def test_figure4c_ranks(self):
        """Figure 4(c): (1,5) and (2,3) rank 3; (1,4) and (2,4) rank 4."""
        ranked = dict(rank_cphases(FIG4_PAIRS))
        assert ranked[(1, 5)] == 3
        assert ranked[(2, 3)] == 3
        assert ranked[(1, 4)] == 4
        assert ranked[(2, 4)] == 4

    def test_descending_order(self):
        ranks = [r for _, r in rank_cphases(FIG4_PAIRS)]
        assert ranks == sorted(ranks, reverse=True)

    def test_figure4d_sorted_list(self):
        """Figure 4(d): rank-4 gates precede rank-3 gates."""
        order = [pair for pair, _ in rank_cphases(FIG4_PAIRS)]
        assert set(order[:2]) == {(1, 4), (2, 4)}
        assert set(order[2:]) == {(1, 5), (2, 3)}


class TestHardwareProfile:
    def test_matches_coupling_method(self):
        g = ibmq_20_tokyo()
        assert hardware_profile(g) == g.connectivity_profile()

    def test_radius_parameter_forwarded(self):
        g = ibmq_20_tokyo()
        assert hardware_profile(g, radius=1)[0] == g.degree(0)


class TestInteractionPairs:
    def test_extracts_cphases_only(self):
        qc = QuantumCircuit(4).h(0).cphase(0.3, 0, 1).cnot(1, 2)
        qc.cphase(0.3, 2, 3)
        assert interaction_pairs(qc) == [(0, 1), (2, 3)]

    def test_preserves_order_and_duplicates(self):
        qc = QuantumCircuit(2).cphase(0.1, 0, 1).cphase(0.2, 0, 1)
        assert interaction_pairs(qc) == [(0, 1), (0, 1)]
