"""Unit tests for reverse-traversal and VQA placements."""

import numpy as np
import pytest

from repro.compiler.advanced_placement import (
    reverse_traversal_placement,
    vqa_placement,
)
from repro.compiler.backend import ConventionalBackend
from repro.compiler.mapping import Mapping
from repro.hardware import (
    Calibration,
    ibmq_20_tokyo,
    linear_device,
    ring_device,
    uniform_calibration,
)

PAIRS = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]


class TestReverseTraversal:
    def test_valid_injective_mapping(self):
        m = reverse_traversal_placement(
            PAIRS, 5, ring_device(8), rng=np.random.default_rng(0)
        )
        placed = m.as_dict()
        assert sorted(placed) == [0, 1, 2, 3, 4]
        assert len(set(placed.values())) == 5

    def test_refinement_reduces_swaps_vs_random_start(self):
        """Averaged over seeds, the refined mapping needs no more SWAPs than
        the random mapping it started from."""
        from repro.circuits import QuantumCircuit

        device = linear_device(6)
        backend = ConventionalBackend(device)
        circuit = QuantumCircuit(6)
        for a, b in PAIRS:
            circuit.cphase(0.5, a, b)

        random_swaps, refined_swaps = [], []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            start = Mapping.random(5, 6, rng)
            random_swaps.append(backend.compile(circuit, start).swap_count)
            refined = reverse_traversal_placement(
                PAIRS, 5, device, rng=np.random.default_rng(seed)
            )
            refined_swaps.append(backend.compile(circuit, refined).swap_count)
        assert np.mean(refined_swaps) <= np.mean(random_swaps)

    def test_traversal_count_validated(self):
        with pytest.raises(ValueError, match="traversals"):
            reverse_traversal_placement(PAIRS, 5, ring_device(8), traversals=0)

    def test_too_many_logical(self):
        with pytest.raises(ValueError, match="do not fit"):
            reverse_traversal_placement(PAIRS, 9, ring_device(8))

    def test_reproducible(self):
        a = reverse_traversal_placement(
            PAIRS, 5, ring_device(8), rng=np.random.default_rng(3)
        )
        b = reverse_traversal_placement(
            PAIRS, 5, ring_device(8), rng=np.random.default_rng(3)
        )
        assert a == b


class TestVQAPlacement:
    def test_valid_injective_mapping(self):
        cal = uniform_calibration(ibmq_20_tokyo(), cnot_error=0.02)
        m = vqa_placement(PAIRS, 5, cal)
        assert len(set(m.as_dict().values())) == 5

    def test_avoids_unreliable_region(self):
        """On a line where one end has terrible links, the heaviest logical
        qubit must land at the reliable end."""
        device = linear_device(6)
        cal = Calibration(
            device,
            {
                (0, 1): 0.40,
                (1, 2): 0.40,
                (2, 3): 0.02,
                (3, 4): 0.02,
                (4, 5): 0.02,
            },
        )
        m = vqa_placement([(0, 1), (0, 2), (0, 3)], 4, cal)
        # The hub (logical 0) must sit on a qubit whose links are reliable.
        hub = m.physical(0)
        assert hub >= 3

    def test_logical_neighbours_placed_near_anchor(self):
        cal = uniform_calibration(ibmq_20_tokyo(), cnot_error=0.02)
        m = vqa_placement(PAIRS, 5, cal)
        device = cal.coupling
        distances = [
            device.distance(m.physical(a), m.physical(b)) for a, b in PAIRS
        ]
        assert max(distances) <= 3

    def test_too_many_logical(self):
        cal = uniform_calibration(linear_device(4))
        with pytest.raises(ValueError, match="do not fit"):
            vqa_placement(PAIRS, 5, cal)

    def test_rng_tiebreaks(self):
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        outcomes = {
            tuple(
                sorted(
                    vqa_placement(
                        [(0, 1)], 2, cal, rng=np.random.default_rng(seed)
                    )
                    .as_dict()
                    .items()
                )
            )
            for seed in range(10)
        }
        # On a symmetric ring with uniform calibration everything ties;
        # random tie-breaking must actually vary the outcome.
        assert len(outcomes) > 1
