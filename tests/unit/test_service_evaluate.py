"""Unit tests for the service-layer evaluation workload (EvalJob)."""

import numpy as np
import pytest

from repro.qaoa.problems import Level, QAOAProgram
from repro.service import (
    CompileJob,
    EvalJob,
    ResultCache,
    execute_eval_job,
    run_eval_batch,
)


def _program(n=6, seed=0):
    rng = np.random.default_rng(seed)
    edges = [
        (a, b, float(rng.uniform(0.5, 2.0)))
        for a in range(n)
        for b in range(a + 1, n)
        if rng.random() < 0.6
    ] or [(0, 1, 1.0)]
    return QAOAProgram(num_qubits=n, edges=edges, levels=[Level(0.8, 0.4)])


def _job(**kwargs):
    defaults = dict(
        compile_job=CompileJob(
            program=_program(),
            device="ibmq_16_melbourne",
            method="ic",
            calibration="auto",
        ),
        shots=512,
        trajectories=4,
    )
    defaults.update(kwargs)
    return EvalJob(**defaults)


class TestEvalJobHash:
    def test_hash_is_stable_and_id_free(self):
        assert _job().content_hash() == _job(job_id="xyz").content_hash()

    def test_every_eval_knob_changes_the_hash(self):
        base = _job().content_hash()
        assert _job(shots=1024).content_hash() != base
        assert _job(trajectories=8).content_hash() != base
        assert _job(noise_scale=2.0).content_hash() != base
        assert _job(t2_ns=4e4).content_hash() != base
        assert _job(mode="exact").content_hash() != base
        assert _job(eval_seed=9).content_hash() != base

    def test_compile_knobs_change_the_hash(self):
        base = _job().content_hash()
        other = _job(
            compile_job=CompileJob(
                program=_program(),
                device="ibmq_16_melbourne",
                method="vic",
                calibration="auto",
            )
        )
        assert other.content_hash() != base

    def test_proxies_delegate_to_compile_job(self):
        job = _job()
        assert job.device == "ibmq_16_melbourne"
        assert job.method == "ic"
        assert job.seed == 0
        assert job.packing_limit is None
        assert job.program is job.compile_job.program


class TestExecuteEvalJob:
    def test_successful_execution(self):
        result = execute_eval_job(_job())
        assert result.ok, result.error
        m = result.metrics
        assert 0.0 < m["rh"] <= 1.0 and 0.0 < m["r0"] <= 1.0
        assert m["arg"] == pytest.approx(
            100.0 * (m["r0"] - m["rh"]) / m["r0"]
        )
        assert m["fastpath"] is True
        assert m["success_probability"] is not None
        stages = {t["name"] for t in m["eval_trace"]}
        assert {"diagonal", "ideal", "noisy"} <= stages
        assert m["diagonal_fingerprint"]

    def test_bad_method_degrades_not_raises(self):
        job = _job(
            compile_job=CompileJob(
                program=_program(), device="ibmq_16_melbourne", method="bogus"
            )
        )
        result = execute_eval_job(job)
        assert not result.ok
        assert result.error_kind == "invalid"

    def test_noise_scale_zero_closes_the_gap(self):
        noisy = execute_eval_job(_job(mode="exact"))
        clean = execute_eval_job(_job(mode="exact", noise_scale=0.0))
        assert clean.ok and noisy.ok
        assert clean.metrics["arg"] == pytest.approx(0.0, abs=1e-9)
        assert noisy.metrics["arg"] > clean.metrics["arg"]


class TestEvalBatch:
    def test_cache_round_trip(self, tmp_path):
        jobs = [_job(job_id="a"), _job(job_id="b", shots=1024)]
        cold = run_eval_batch(
            jobs, cache=ResultCache(directory=str(tmp_path))
        )
        assert len(cold.ok) == 2 and not cold.failed
        assert all(not r.cached for r in cold.results)
        warm = run_eval_batch(
            jobs, cache=ResultCache(directory=str(tmp_path))
        )
        assert len(warm.ok) == 2
        assert all(r.cached for r in warm.results)
        for before, after in zip(cold.results, warm.results):
            assert before.metrics["arg"] == after.metrics["arg"]

    def test_eval_summary_histograms(self):
        report = run_eval_batch([_job()], cache=None)
        stages = report.eval_summary()
        assert {"diagonal", "ideal", "noisy"} <= set(stages)
        assert all(s["count"] == 1 for s in stages.values())

    def test_to_record_shape(self):
        report = run_eval_batch([_job(job_id="rec")], cache=None)
        record = report.results[0].to_record()
        assert record["id"] == "rec"
        assert record["ok"] is True
        assert record["device"] == "ibmq_16_melbourne"
        assert "arg" in record["metrics"]
