"""Unit tests for portfolio compilation."""

import numpy as np
import pytest

from repro.compiler.portfolio import (
    compile_portfolio,
    depth_objective,
    gate_count_objective,
    reliability_objective,
)
from repro.hardware import (
    ibmq_16_melbourne,
    melbourne_calibration,
    ring_device,
)
from repro.qaoa import MaxCutProblem


@pytest.fixture
def program():
    problem = MaxCutProblem(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (0, 3), (1, 4)]
    )
    return problem.to_program([0.6], [0.3])


class TestCompilePortfolio:
    def test_best_has_minimum_score(self, program):
        result = compile_portfolio(
            program, ring_device(8), methods=("ip", "ic"), seeds=(0, 1)
        )
        assert result.best.score == min(e.score for e in result.entries)
        assert len(result.entries) == 4

    def test_configuration_grid_is_full(self, program):
        result = compile_portfolio(
            program,
            ring_device(8),
            methods=("ic",),
            packing_limits=(1, 2, None),
            seeds=(0, 1),
        )
        assert len(result.entries) == 6
        configs = {(e.packing_limit, e.seed) for e in result.entries}
        assert len(configs) == 6

    def test_portfolio_never_worse_than_single_run(self, program):
        from repro.compiler import compile_with_method

        single = compile_with_method(
            program, ring_device(8), "ic", rng=np.random.default_rng(0)
        )
        result = compile_portfolio(
            program,
            ring_device(8),
            methods=("ip", "ic"),
            packing_limits=(None, 2),
            seeds=(0, 1, 2),
        )
        assert result.best.score <= depth_objective(single)

    def test_objective_changes_winner_ranking(self, program):
        by_depth = compile_portfolio(
            program, ring_device(8), methods=("ip", "ic"), seeds=(0, 1),
            objective=depth_objective,
        )
        by_gates = compile_portfolio(
            program, ring_device(8), methods=("ip", "ic"), seeds=(0, 1),
            objective=gate_count_objective,
        )
        # The gate-optimal winner cannot have more gates than the
        # depth-optimal one.
        assert (
            by_gates.best.compiled.gate_count()
            <= by_depth.best.compiled.gate_count()
        )

    def test_reliability_objective_with_vic(self, program):
        cal = melbourne_calibration()
        result = compile_portfolio(
            program,
            ibmq_16_melbourne(),
            methods=("ic", "vic"),
            seeds=(0,),
            objective=reliability_objective(cal),
            calibration=cal,
        )
        assert result.best.score < 0  # negated success probability

    def test_scoreboard_sorted(self, program):
        result = compile_portfolio(
            program, ring_device(8), methods=("ip", "ic"), seeds=(0, 1, 2)
        )
        scores = [row[3] for row in result.scoreboard()]
        assert scores == sorted(scores)

    def test_empty_grid_rejected(self, program):
        with pytest.raises(ValueError, match="non-empty"):
            compile_portfolio(program, ring_device(8), methods=())

    def test_winner_is_valid_circuit(self, program):
        result = compile_portfolio(
            program, ring_device(8), methods=("ip", "ic"), seeds=(0, 1)
        )
        result.best.compiled.validate()


class TestEngineRewiring:
    """The grid runs through the service batch engine; outcomes must match
    the pre-service direct compile loop exactly (fixed seeds)."""

    GRID = dict(methods=("ip", "ic"), packing_limits=(None, 2), seeds=(0, 1))

    def _direct_entries(self, program):
        from repro.compiler import compile_with_method

        entries = []
        for method in self.GRID["methods"]:
            for limit in self.GRID["packing_limits"]:
                for seed in self.GRID["seeds"]:
                    compiled = compile_with_method(
                        program,
                        ring_device(8),
                        method,
                        packing_limit=limit,
                        rng=np.random.default_rng(seed),
                    )
                    entries.append((method, limit, seed, compiled))
        return entries

    def test_winner_identical_to_direct_loop(self, program):
        result = compile_portfolio(program, ring_device(8), **self.GRID)
        direct = self._direct_entries(program)
        scored = [
            (depth_objective(c), i) for i, (_, _, _, c) in enumerate(direct)
        ]
        _, best_i = min(scored)
        method, limit, seed, compiled = direct[best_i]
        assert (result.best.method, result.best.packing_limit,
                result.best.seed) == (method, limit, seed)
        assert (
            result.best.compiled.circuit.instructions
            == compiled.circuit.instructions
        )
        assert result.best.compiled.initial_mapping == compiled.initial_mapping
        assert result.best.compiled.final_mapping == compiled.final_mapping

    def test_full_scoreboard_identical_to_direct_loop(self, program):
        result = compile_portfolio(program, ring_device(8), **self.GRID)
        direct = self._direct_entries(program)
        assert len(result.entries) == len(direct)
        for entry, (method, limit, seed, compiled) in zip(
            result.entries, direct
        ):
            assert (entry.method, entry.packing_limit, entry.seed) == (
                method, limit, seed,
            )
            assert entry.score == depth_objective(compiled)

    def test_shared_cache_reuses_results(self, program):
        from repro.service import ResultCache

        cache = ResultCache()
        first = compile_portfolio(
            program, ring_device(8), cache=cache, **self.GRID
        )
        lookups_after_first = cache.stats.lookups
        assert cache.stats.hits == 0
        second = compile_portfolio(
            program, ring_device(8), cache=cache, **self.GRID
        )
        assert cache.stats.hits == cache.stats.lookups - lookups_after_first
        assert second.best.score == first.best.score
        assert (
            second.best.compiled.circuit.instructions
            == first.best.compiled.circuit.instructions
        )

    def test_failing_candidate_raises(self, program):
        # VIC without calibration cannot compile — the portfolio must not
        # silently drop the candidate.
        with pytest.raises(RuntimeError, match="vic"):
            compile_portfolio(
                program, ring_device(8), methods=("ic", "vic"), seeds=(0,)
            )


class TestCalibrationDrift:
    def test_drift_changes_errors_within_bounds(self):
        cal = melbourne_calibration()
        drifted = cal.drifted(np.random.default_rng(0), relative_sigma=0.5)
        assert drifted.cnot_error != cal.cnot_error
        for e, err in drifted.cnot_error.items():
            assert 1.0e-3 <= err <= 0.5

    def test_zero_sigma_is_identity_up_to_clipping(self):
        cal = melbourne_calibration()
        drifted = cal.drifted(np.random.default_rng(1), relative_sigma=0.0)
        for e in cal.cnot_error:
            assert drifted.cnot_error[e] == pytest.approx(
                max(cal.cnot_error[e], 1e-3)
            )

    def test_negative_sigma_rejected(self):
        cal = melbourne_calibration()
        with pytest.raises(ValueError, match="relative_sigma"):
            cal.drifted(np.random.default_rng(2), relative_sigma=-0.1)

    def test_stale_calibration_costs_vic_reliability(self):
        """Compile VIC against yesterday's calibration, evaluate under
        today's: averaged over drifts, the success probability under the
        *true* calibration is lower than under the assumed one — the
        re-compilation motivation of Section VII."""
        from repro.compiler import compile_with_method, success_probability

        cal = melbourne_calibration()
        problem = MaxCutProblem(
            8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7)]
        )
        program = problem.to_program([0.6], [0.3])
        compiled = compile_with_method(
            program,
            ibmq_16_melbourne(),
            "vic",
            calibration=cal,
            rng=np.random.default_rng(3),
        )
        assumed = success_probability(compiled.native(), cal)
        rng = np.random.default_rng(4)
        actuals = [
            success_probability(
                compiled.native(), cal.drifted(rng, relative_sigma=0.6)
            )
            for _ in range(20)
        ]
        # Drift is log-normal (mean factor > 1), so true error rates are on
        # average worse than assumed.
        assert np.median(actuals) < assumed * 1.5
        assert min(actuals) < assumed  # some days are strictly worse