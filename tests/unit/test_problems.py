"""Unit tests for MaxCut problems and QAOA programs."""

import networkx as nx
import pytest

from repro.qaoa.problems import Level, MaxCutProblem, QAOAProgram


class TestMaxCutConstruction:
    def test_basic(self):
        p = MaxCutProblem(3, [(0, 1), (1, 2)])
        assert p.num_nodes == 3
        assert p.pairs() == [(0, 1), (1, 2)]

    def test_weights_accumulate_on_duplicates(self):
        p = MaxCutProblem(2, [(0, 1), (1, 0)])
        assert p.edges == [(0, 1, 2.0)]

    def test_explicit_weights(self):
        p = MaxCutProblem(3, [(0, 1, 2.5), (1, 2)])
        assert p.edges == [(0, 1, 2.5), (1, 2, 1.0)]
        assert p.total_weight() == pytest.approx(3.5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            MaxCutProblem(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            MaxCutProblem(2, [(0, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            MaxCutProblem(3, [])

    def test_malformed_edge_rejected(self):
        with pytest.raises(ValueError, match="must be"):
            MaxCutProblem(3, [(0, 1, 1.0, 2.0)])

    def test_from_graph_relabels_nodes(self):
        g = nx.Graph()
        g.add_edge("b", "a")
        g.add_edge("b", "c", weight=3.0)
        p = MaxCutProblem.from_graph(g)
        assert p.num_nodes == 3
        assert (0, 1, 1.0) in p.edges  # a-b
        assert (1, 2, 3.0) in p.edges  # b-c


class TestCutValues:
    def test_single_edge(self):
        p = MaxCutProblem(2, [(0, 1)])
        assert p.cut_value("00") == 0
        assert p.cut_value("01") == 1
        assert p.cut_value("10") == 1
        assert p.cut_value("11") == 0

    def test_bit_orientation(self):
        # Edge (0, 2) on 3 nodes: string q2 q1 q0.
        p = MaxCutProblem(3, [(0, 2)])
        assert p.cut_value("100") == 1  # q2=1, q0=0: cut
        assert p.cut_value("001") == 1
        assert p.cut_value("101") == 0

    def test_wrong_length_rejected(self):
        p = MaxCutProblem(2, [(0, 1)])
        with pytest.raises(ValueError, match="length"):
            p.cut_value("010")

    def test_cut_values_table_matches_scalar(self):
        p = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        table = p.cut_values()
        for idx in range(16):
            bits = format(idx, "04b")
            assert table[idx] == pytest.approx(p.cut_value(bits))

    def test_cut_values_cached(self):
        p = MaxCutProblem(3, [(0, 1)])
        assert p.cut_values() is p.cut_values()

    def test_weighted_cut(self):
        p = MaxCutProblem(2, [(0, 1, 2.5)])
        assert p.cut_value("01") == pytest.approx(2.5)

    def test_complement_symmetry(self):
        p = MaxCutProblem(4, [(0, 1), (1, 2), (0, 3)])
        table = p.cut_values()
        n = 4
        for idx in range(2 ** n):
            assert table[idx] == table[(2 ** n - 1) ^ idx]


class TestMaxCutValue:
    def test_k4(self):
        p = MaxCutProblem(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert p.max_cut_value() == 4.0

    def test_c5(self):
        p = MaxCutProblem(5, [(i, (i + 1) % 5) for i in range(5)])
        assert p.max_cut_value() == 4.0

    def test_bipartite_cuts_everything(self):
        p = MaxCutProblem(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
        assert p.max_cut_value() == 4.0

    def test_too_large_refused(self):
        edges = [(i, i + 1) for i in range(29)]
        p = MaxCutProblem(30, edges)
        with pytest.raises(ValueError, match="infeasible"):
            p.cut_values()


class TestGraphQueries:
    def test_degree(self):
        p = MaxCutProblem(4, [(0, 1), (0, 2), (0, 3)])
        assert p.degree(0) == 3
        assert p.degree(1) == 1

    def test_common_neighbours(self):
        # Triangle 0-1-2: edge (0,1) has one common neighbour (2).
        p = MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])
        assert p.common_neighbours(0, 1) == 1

    def test_no_triangles(self):
        p = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3)])
        assert p.common_neighbours(1, 2) == 0


class TestQAOAProgram:
    def test_to_program(self):
        p = MaxCutProblem(3, [(0, 1), (1, 2)])
        prog = p.to_program([0.5], [0.3])
        assert prog.p == 1
        assert prog.num_qubits == 3
        assert prog.levels == [Level(0.5, 0.3)]

    def test_mismatched_params_rejected(self):
        p = MaxCutProblem(2, [(0, 1)])
        with pytest.raises(ValueError, match="differ"):
            p.to_program([0.5], [0.3, 0.1])

    def test_cphase_angle_is_minus_gamma_times_weight(self):
        p = MaxCutProblem(2, [(0, 1, 2.0)])
        prog = p.to_program([0.5], [0.3])
        assert prog.cphase_gates(0) == [(0, 1, -1.0)]

    def test_mixer_angle_is_two_beta(self):
        p = MaxCutProblem(2, [(0, 1)])
        prog = p.to_program([0.5], [0.3])
        assert prog.mixer_angle(0) == pytest.approx(0.6)

    def test_needs_a_level(self):
        with pytest.raises(ValueError, match="at least one level"):
            QAOAProgram(2, [(0, 1, 1.0)], [])

    def test_program_edge_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            QAOAProgram(2, [(0, 5, 1.0)], [Level(0.1, 0.1)])
        with pytest.raises(ValueError, match="self-loop"):
            QAOAProgram(2, [(1, 1, 1.0)], [Level(0.1, 0.1)])

    def test_pairs(self):
        prog = QAOAProgram(3, [(0, 1, 1.0), (1, 2, 2.0)], [Level(0.1, 0.2)])
        assert prog.pairs() == [(0, 1), (1, 2)]
