"""Unit tests for trivial/random/GreedyV/GreedyE placements."""

import numpy as np
import pytest

from repro.compiler.placement import (
    greedy_e_placement,
    greedy_v_placement,
    random_placement,
    trivial_placement,
)
from repro.hardware import ibmq_20_tokyo, linear_device, ring_device

PAIRS = [(0, 1), (0, 2), (0, 3), (1, 2)]  # qubit 0 is heaviest (3 ops)


class TestTrivialAndRandom:
    def test_trivial_identity(self):
        m = trivial_placement(PAIRS, 4, linear_device(6))
        assert m.as_dict() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_random_injective_and_seeded(self):
        g = ring_device(8)
        a = random_placement(PAIRS, 4, g, np.random.default_rng(1))
        b = random_placement(PAIRS, 4, g, np.random.default_rng(1))
        assert a == b
        assert len(set(a.as_dict().values())) == 4

    def test_too_many_logical_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            trivial_placement(PAIRS, 7, linear_device(6))


class TestGreedyV:
    def test_heaviest_logical_on_highest_degree_physical(self):
        g = ibmq_20_tokyo()
        m = greedy_v_placement(PAIRS, 4, g)
        top_degree = max(range(20), key=lambda p: (g.degree(p), -p))
        assert m.physical(0) == top_degree

    def test_all_placed_injectively(self):
        g = ibmq_20_tokyo()
        m = greedy_v_placement(PAIRS, 4, g)
        assert len(set(m.as_dict().values())) == 4

    def test_weight_order_respected(self):
        # Qubit 0 (3 ops) gets a physical qubit of degree >= qubit 3's (1 op).
        g = ibmq_20_tokyo()
        m = greedy_v_placement(PAIRS, 4, g)
        assert g.degree(m.physical(0)) >= g.degree(m.physical(3))

    def test_isolated_logical_qubits_still_placed(self):
        g = linear_device(6)
        m = greedy_v_placement([(0, 1)], 4, g)  # qubits 2, 3 unused
        assert len(m.as_dict()) == 4


class TestGreedyE:
    def test_all_placed_injectively(self):
        g = ibmq_20_tokyo()
        m = greedy_e_placement(PAIRS, 4, g)
        assert len(set(m.as_dict().values())) == 4
        assert sorted(m.as_dict()) == [0, 1, 2, 3]

    def test_first_pair_lands_on_an_edge(self):
        g = ibmq_20_tokyo()
        m = greedy_e_placement(PAIRS, 4, g)
        # All pairs have weight 1; whichever was placed first is
        # adjacent — check that at least one program pair sits on a
        # hardware edge.
        on_edge = [
            g.has_edge(m.physical(a), m.physical(b)) for a, b in PAIRS
        ]
        assert any(on_edge)

    def test_neighbour_of_placed_endpoint_preferred(self):
        g = linear_device(6)
        m = greedy_e_placement([(0, 1), (1, 2)], 3, g)
        # q1 shares pairs with both; at least one partner must be adjacent.
        adj = [
            g.has_edge(m.physical(1), m.physical(0)),
            g.has_edge(m.physical(1), m.physical(2)),
        ]
        assert any(adj)

    def test_pair_weights_respected(self):
        # (0,1) interacts twice, (2,3) once: (0,1) must be adjacent.
        g = linear_device(8)
        m = greedy_e_placement([(0, 1), (0, 1), (2, 3)], 4, g)
        assert g.has_edge(m.physical(0), m.physical(1))

    def test_leftover_qubits_placed(self):
        g = ring_device(8)
        m = greedy_e_placement([(0, 1)], 5, g)
        assert len(m.as_dict()) == 5

    def test_device_nearly_full(self):
        g = linear_device(4)
        m = greedy_e_placement([(0, 1), (1, 2), (2, 3), (0, 3)], 4, g)
        assert len(set(m.as_dict().values())) == 4
