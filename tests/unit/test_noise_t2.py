"""Unit tests for T2 idle-dephasing in the noisy simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.timing import DurationModel
from repro.hardware import linear_device, uniform_calibration
from repro.sim.noise import NoiseModel, NoisySimulator


def _ramsey_error_fraction(noisy, shots, seed, idle_gates=0):
    """Ramsey-style probe: H on qubit 0, a variable idle window (created by
    busy-work on qubit 1 followed by a CZ that forces qubit 0 to wait),
    then H again.  Ideally qubit 0 always measures 0; a dephasing Z flip
    during the idle window flips the outcome to 1.  Returns the fraction of
    shots reading 1 on qubit 0 — the dephasing signal.

    ``idle_gates`` must be even so qubit 1 returns to |0> and the CZ acts
    as identity on the ideal state.
    """
    assert idle_gates % 2 == 0
    qc = QuantumCircuit(2).h(0)
    for _ in range(idle_gates):
        qc.x(1)
    qc.cz(0, 1)
    qc.h(0)
    qc.measure_all()
    counts = noisy.sample_counts(qc, shots, np.random.default_rng(seed))
    flipped = sum(c for bits, c in counts.items() if bits[-1] == "1")
    return flipped / shots


class TestT2Model:
    def test_t2_none_is_previous_behaviour(self):
        model = NoiseModel.ideal(3)
        assert model.t2_ns is None
        noisy = NoisySimulator(model, trajectories=4)
        assert noisy.durations is None
        frac = _ramsey_error_fraction(noisy, 500, seed=0, idle_gates=40)
        assert frac == 0.0

    def test_t2_flips_ramsey_outcomes(self):
        model = NoiseModel(
            two_qubit_depol={},
            single_qubit_depol={},
            readout_flip={},
            t2_ns=5_000.0,  # aggressive dephasing
        )
        noisy = NoisySimulator(model, trajectories=64)
        frac = _ramsey_error_fraction(noisy, 2000, seed=1, idle_gates=100)
        assert frac > 0.1

    def test_longer_idle_decoheres_more(self):
        def fraction(idle):
            model = NoiseModel(
                two_qubit_depol={},
                single_qubit_depol={},
                readout_flip={},
                t2_ns=20_000.0,
            )
            noisy = NoisySimulator(model, trajectories=64)
            return _ramsey_error_fraction(noisy, 3000, seed=2, idle_gates=idle)

        assert fraction(0) <= fraction(40) + 0.02
        assert fraction(40) < fraction(400) + 0.02
        assert fraction(400) > 0.05

    def test_huge_t2_is_effectively_noiseless(self):
        model = NoiseModel(
            two_qubit_depol={},
            single_qubit_depol={},
            readout_flip={},
            t2_ns=1e15,
        )
        noisy = NoisySimulator(model, trajectories=8)
        frac = _ramsey_error_fraction(noisy, 500, seed=3, idle_gates=20)
        assert frac == pytest.approx(0.0)

    def test_from_calibration_carries_t2(self):
        cal = uniform_calibration(linear_device(3), cnot_error=0.01)
        model = NoiseModel.from_calibration(cal, t2_ns=70_000.0)
        assert model.t2_ns == 70_000.0

    def test_scaled_tightens_t2(self):
        model = NoiseModel(
            two_qubit_depol={}, single_qubit_depol={}, readout_flip={},
            t2_ns=70_000.0,
        )
        assert model.scaled(2.0).t2_ns == pytest.approx(35_000.0)

    def test_custom_duration_model_honoured(self):
        # With zero-duration gates nothing ever idles: no dephasing at all.
        model = NoiseModel(
            two_qubit_depol={}, single_qubit_depol={}, readout_flip={},
            t2_ns=1.0,  # brutal T2, but no elapsed time
        )
        zero = DurationModel(
            single_qubit=0.0, virtual=0.0, two_qubit=0.0, swap=0.0, measure=0.0
        )
        noisy = NoisySimulator(model, trajectories=16, durations=zero)
        frac = _ramsey_error_fraction(noisy, 500, seed=4, idle_gates=30)
        assert frac == pytest.approx(0.0)

    def test_dephasing_does_not_affect_computational_basis_state(self):
        # Z flips are invisible on |0...0>: a circuit that never creates
        # superposition is immune to pure dephasing.
        model = NoiseModel(
            two_qubit_depol={}, single_qubit_depol={}, readout_flip={},
            t2_ns=100.0,
        )
        noisy = NoisySimulator(model, trajectories=16)
        qc = QuantumCircuit(2).x(0).x(0).x(0)  # odd X count -> |01>
        qc.measure_all()
        counts = noisy.sample_counts(qc, 400, np.random.default_rng(5))
        assert counts == {"01": 400}
