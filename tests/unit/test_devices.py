"""Unit tests for the device library."""

import pytest

from repro.hardware.devices import (
    DEVICE_BUILDERS,
    figure6_device,
    fully_connected_device,
    get_device,
    grid_device,
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    linear_device,
    ring_device,
)


class TestTokyo:
    def test_size(self):
        g = ibmq_20_tokyo()
        assert g.num_qubits == 20
        assert g.is_connected()

    def test_qubit0_first_neighbours_match_figure3(self):
        """Figure 3(a): qubit 0 couples to qubits 1 and 5."""
        assert ibmq_20_tokyo().neighbours(0) == (1, 5)

    def test_diagonal_couplings_present(self):
        g = ibmq_20_tokyo()
        for a, b in [(1, 7), (2, 6), (5, 11), (6, 10), (13, 19), (14, 18)]:
            assert g.has_edge(a, b)

    def test_grid_couplings_present(self):
        g = ibmq_20_tokyo()
        for a, b in [(0, 1), (3, 4), (0, 5), (14, 19), (15, 16)]:
            assert g.has_edge(a, b)


class TestMelbourne:
    def test_size_and_edges(self):
        g = ibmq_16_melbourne()
        assert g.num_qubits == 15
        assert g.num_edges() == 20
        assert g.is_connected()

    def test_ladder_structure(self):
        g = ibmq_16_melbourne()
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 14)
        assert g.has_edge(6, 8)
        assert g.has_edge(7, 8)
        assert not g.has_edge(6, 7)
        assert not g.has_edge(0, 2)

    def test_qubit7_is_an_endpoint(self):
        # Qubit 7 sits at the end of the bottom row (degree 1).
        assert ibmq_16_melbourne().degree(7) == 1


class TestPoughkeepsie:
    def test_size_and_sparsity(self):
        from repro.hardware.devices import ibmq_poughkeepsie

        g = ibmq_poughkeepsie()
        assert g.num_qubits == 20
        assert g.num_edges() == 23
        assert g.is_connected()

    def test_sparser_than_tokyo(self):
        from repro.hardware.devices import ibmq_poughkeepsie

        assert ibmq_poughkeepsie().num_edges() < ibmq_20_tokyo().num_edges()

    def test_coupling_pair_count_matches_murali(self):
        """Murali et al. report 221 coupling *pairs*; with 23 edges maybe
        not all 253 pairs are physically simultaneous — but the edge count
        and C(23, 2) = 253 bracket the figure's 221 (their count excludes
        pairs sharing a qubit, which cannot run in parallel anyway)."""
        from itertools import combinations

        from repro.hardware.devices import ibmq_poughkeepsie

        g = ibmq_poughkeepsie()
        disjoint_pairs = sum(
            1
            for e1, e2 in combinations(sorted(g.edges), 2)
            if not set(e1) & set(e2)
        )
        assert disjoint_pairs == 221


class TestSyntheticDevices:
    def test_grid_structure(self):
        g = grid_device(2, 3)
        assert g.num_qubits == 6
        assert g.num_edges() == 7  # 2*2 horizontal + 3 vertical
        assert g.has_edge(0, 1) and g.has_edge(0, 3)
        assert not g.has_edge(2, 3)  # no wraparound

    def test_grid_6x6_is_the_fig12_device(self):
        g = grid_device(6, 6)
        assert g.num_qubits == 36
        assert g.num_edges() == 60
        assert g.name == "grid_6x6"

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_device(0, 3)

    def test_linear(self):
        g = linear_device(4)
        assert g.num_edges() == 3
        assert g.distance(0, 3) == 3

    def test_linear_too_small(self):
        with pytest.raises(ValueError):
            linear_device(1)

    def test_ring(self):
        g = ring_device(8)
        assert g.num_edges() == 8
        assert g.distance(0, 4) == 4
        assert g.distance(0, 7) == 1

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_device(2)

    def test_fully_connected(self):
        g = fully_connected_device(5)
        assert g.num_edges() == 10
        assert all(
            g.distance(a, b) == 1 for a in range(5) for b in range(5) if a != b
        )

    def test_figure6_device_shape(self):
        g = figure6_device()
        assert g.num_qubits == 6
        assert g.num_edges() == 7
        assert g.has_edge(1, 4)  # the chord


class TestRegistry:
    def test_all_builders_construct(self):
        for name in DEVICE_BUILDERS:
            device = get_device(name)
            assert device.num_qubits >= 4

    def test_get_device_unknown(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("ibmq_nonexistent")
