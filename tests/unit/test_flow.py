"""Unit tests for the compilation flows (NAIVE/QAIM/IP/IC/VIC presets)."""

import numpy as np
import pytest

from repro.compiler.flow import (
    METHOD_PRESETS,
    compile_qaoa,
    compile_with_method,
)
from repro.hardware import (
    ibmq_16_melbourne,
    ibmq_20_tokyo,
    linear_device,
    melbourne_calibration,
    uniform_calibration,
)
from repro.qaoa import MaxCutProblem


@pytest.fixture
def program(k4_problem):
    return k4_problem.to_program([0.5], [0.3])


class TestPresets:
    @pytest.mark.parametrize("method", sorted(METHOD_PRESETS))
    def test_every_preset_compiles_and_validates(self, method, program, rng):
        calibration = (
            melbourne_calibration() if method == "vic" else None
        )
        coupling = (
            ibmq_16_melbourne() if method == "vic" else ibmq_20_tokyo()
        )
        compiled = compile_with_method(
            program, coupling, method, calibration=calibration, rng=rng
        )
        compiled.validate()
        assert compiled.num_logical == 4
        assert compiled.compile_time > 0

    def test_unknown_method_rejected(self, program, rng):
        with pytest.raises(ValueError, match="unknown method"):
            compile_with_method(program, ibmq_20_tokyo(), "magic", rng=rng)

    def test_method_label(self, program, rng):
        compiled = compile_with_method(
            program, ibmq_20_tokyo(), "ic", rng=rng
        )
        assert compiled.method == "qaim+ic"


class TestStructure:
    @pytest.mark.parametrize("ordering", ["random", "ip", "ic"])
    def test_gate_census(self, ordering, program, rng):
        """Every flow must emit exactly n H, |E| CPHASE, n RX, n measures
        (plus SWAPs)."""
        compiled = compile_qaoa(
            program, ibmq_20_tokyo(), ordering=ordering, rng=rng
        )
        ops = compiled.circuit.count_ops()
        assert ops["h"] == 4
        assert ops["cphase"] == 6
        assert ops["rx"] == 4
        assert ops["measure"] == 4

    def test_measurements_at_final_mapping(self, program, rng):
        compiled = compile_qaoa(
            program, linear_device(5), ordering="ic", rng=rng
        )
        measured = {
            i.qubits[0] for i in compiled.circuit if i.name == "measure"
        }
        assert measured == set(compiled.final_mapping.values())

    def test_multi_level_program(self, k4_problem, rng):
        program = k4_problem.to_program([0.5, 0.2], [0.3, 0.1])
        compiled = compile_qaoa(
            program, ibmq_20_tokyo(), ordering="ic", rng=rng
        )
        ops = compiled.circuit.count_ops()
        assert ops["cphase"] == 12  # 6 edges x 2 levels
        assert ops["rx"] == 8

    def test_swap_count_matches_circuit(self, program, rng):
        compiled = compile_qaoa(
            program, linear_device(6), ordering="random", rng=rng
        )
        assert compiled.swap_count == compiled.circuit.count_ops().get(
            "swap", 0
        )

    def test_initial_mapping_is_injective(self, program, rng):
        compiled = compile_qaoa(
            program, ibmq_20_tokyo(), placement="random", rng=rng
        )
        values = list(compiled.initial_mapping.values())
        assert len(set(values)) == len(values) == 4


class TestArgumentValidation:
    def test_vic_requires_calibration(self, program, rng):
        with pytest.raises(ValueError, match="requires calibration"):
            compile_qaoa(program, ibmq_16_melbourne(), ordering="vic", rng=rng)

    def test_vic_calibration_device_mismatch(self, program, rng):
        cal = uniform_calibration(linear_device(5))
        with pytest.raises(ValueError, match="does not match"):
            compile_qaoa(
                program,
                ibmq_16_melbourne(),
                ordering="vic",
                calibration=cal,
                rng=rng,
            )

    def test_unknown_placement(self, program, rng):
        with pytest.raises(ValueError, match="unknown placement"):
            compile_qaoa(program, ibmq_20_tokyo(), placement="magic", rng=rng)

    def test_unknown_ordering(self, program, rng):
        with pytest.raises(ValueError, match="unknown ordering"):
            compile_qaoa(program, ibmq_20_tokyo(), ordering="magic", rng=rng)


class TestDeterminism:
    @pytest.mark.parametrize("method", ["naive", "qaim", "ip", "ic"])
    def test_same_seed_same_circuit(self, method, program):
        a = compile_with_method(
            program, ibmq_20_tokyo(), method, rng=np.random.default_rng(11)
        )
        b = compile_with_method(
            program, ibmq_20_tokyo(), method, rng=np.random.default_rng(11)
        )
        assert a.circuit.instructions == b.circuit.instructions
        assert a.initial_mapping == b.initial_mapping


class TestCrosstalkIntegration:
    def test_crosstalk_pass_runs_in_flow(self, program, rng):
        from repro.compiler.crosstalk import count_conflicts
        from repro.hardware import fully_connected_device

        device = fully_connected_device(4)
        # On all-to-all hardware IP packs CPHASEs side by side; declare two
        # co-scheduled couplings as conflicting.
        baseline = compile_qaoa(
            program, device, ordering="ip", rng=np.random.default_rng(3)
        )
        from repro.circuits import asap_layers

        conflict = None
        for layer in asap_layers(baseline.circuit):
            edges = [
                tuple(sorted(i.qubits)) for i in layer if i.is_two_qubit
            ]
            if len(edges) >= 2:
                conflict = (edges[0], edges[1])
                break
        assert conflict is not None
        mitigated = compile_qaoa(
            program,
            device,
            ordering="ip",
            rng=np.random.default_rng(3),
            crosstalk_conflicts=[conflict],
        )
        assert count_conflicts(mitigated.circuit, [conflict]) == 0
        mitigated.validate()

    def test_no_conflicts_means_no_change(self, program, rng):
        a = compile_qaoa(
            program, ibmq_20_tokyo(), ordering="ic",
            rng=np.random.default_rng(5),
        )
        b = compile_qaoa(
            program, ibmq_20_tokyo(), ordering="ic",
            rng=np.random.default_rng(5), crosstalk_conflicts=[],
        )
        assert a.circuit.instructions == b.circuit.instructions


class TestPackingLimit:
    def test_limit_one_serialises_cphases(self, program, rng):
        compiled = compile_qaoa(
            program,
            ibmq_20_tokyo(),
            ordering="ic",
            packing_limit=1,
            rng=rng,
        )
        compiled.validate()
        assert compiled.circuit.count_ops()["cphase"] == 6

    def test_limit_changes_structure(self, rng):
        problem = MaxCutProblem(
            8, [(i, (i + 1) % 8) for i in range(8)]
        )
        program = problem.to_program([0.4], [0.2])
        dev = ibmq_20_tokyo()
        loose = compile_qaoa(
            program, dev, ordering="ic",
            rng=np.random.default_rng(0),
        )
        tight = compile_qaoa(
            program, dev, ordering="ic", packing_limit=1,
            rng=np.random.default_rng(0),
        )
        assert tight.depth() >= loose.depth()
