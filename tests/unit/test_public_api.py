"""Public-API consistency checks.

Guards against export drift: every name in each package's ``__all__`` must
resolve, and the top-level convenience namespace must expose the documented
entry points.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.circuits",
    "repro.hardware",
    "repro.sim",
    "repro.sim.fastpath",
    "repro.compiler",
    "repro.qaoa",
    "repro.experiments",
    "repro.service",
    "repro.service.evaluate",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_documented_quickstart_names(self):
        import repro

        for name in (
            "MaxCutProblem",
            "optimize_qaoa",
            "compile_with_method",
            "ibmq_20_tokyo",
            "melbourne_calibration",
            "StatevectorSimulator",
            "NoisySimulator",
            "evaluate_arg",
        ):
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_method_presets_cover_paper(self):
        from repro import METHOD_PRESETS

        assert {
            "naive", "greedy_v", "greedy_e", "qaim", "ip", "ic", "vic",
            "swap_network", "parity",
        } <= set(METHOD_PRESETS)

    def test_method_presets_match_registry(self):
        from repro import METHOD_PRESETS
        from repro.compiler import available_methods

        assert tuple(sorted(METHOD_PRESETS)) == available_methods()

    def test_every_public_callable_has_a_docstring(self):
        import inspect

        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"
