"""Unit tests for general Ising/QUBO cost Hamiltonians."""

import numpy as np
import pytest

from repro.qaoa.ising import IsingProblem, maxcut_to_ising, qubo_to_ising
from repro.qaoa.problems import MaxCutProblem
from repro.sim import StatevectorSimulator
from repro.qaoa.circuit_builder import build_qaoa_circuit


class TestConstruction:
    def test_basic(self):
        p = IsingProblem(3, {(0, 1): 1.0, (1, 2): -0.5}, {0: 0.3}, offset=2.0)
        assert p.num_spins == 3
        assert p.quadratic == {(0, 1): 1.0, (1, 2): -0.5}
        assert p.linear == {0: 0.3}

    def test_key_normalisation_and_accumulation(self):
        p = IsingProblem(2, {(1, 0): 1.0, (0, 1): 0.5})
        assert p.quadratic == {(0, 1): 1.5}

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            IsingProblem(2, {(1, 1): 1.0})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            IsingProblem(2, {(0, 5): 1.0})
        with pytest.raises(ValueError, match="out of range"):
            IsingProblem(2, {}, {7: 1.0})

    def test_zero_fields_dropped(self):
        p = IsingProblem(2, {(0, 1): 1.0}, {0: 0.0})
        assert p.linear == {}


class TestEvaluation:
    def test_value_of_spins(self):
        p = IsingProblem(2, {(0, 1): 2.0}, {0: 1.0}, offset=0.5)
        assert p.value_of_spins([1, 1]) == pytest.approx(3.5)
        assert p.value_of_spins([-1, 1]) == pytest.approx(-2.5)

    def test_spin_validation(self):
        p = IsingProblem(2, {(0, 1): 1.0})
        with pytest.raises(ValueError, match="\\+-1"):
            p.value_of_spins([0, 1])
        with pytest.raises(ValueError, match="expected 2"):
            p.value_of_spins([1])

    def test_bits_to_spins_convention(self):
        # bit 0 -> z=+1; bit 1 -> z=-1; string is q_{n-1}...q_0.
        p = IsingProblem(2, {}, {0: 1.0, 1: 10.0})
        assert p.value_of_bits("00") == pytest.approx(11.0)
        assert p.value_of_bits("01") == pytest.approx(9.0)   # q0=1 -> z0=-1
        assert p.value_of_bits("10") == pytest.approx(-9.0)

    def test_values_table_matches_scalar(self):
        p = IsingProblem(3, {(0, 1): 1.5, (0, 2): -1.0}, {2: 0.5}, offset=1.0)
        table = p.values()
        for idx in range(8):
            bits = format(idx, "03b")
            assert table[idx] == pytest.approx(p.value_of_bits(bits))

    def test_max_and_best(self):
        p = IsingProblem(2, {(0, 1): -1.0})  # antiferromagnet
        assert p.max_value() == pytest.approx(1.0)
        best = p.best_bitstring()
        assert best in ("01", "10")

    def test_brute_force_limit(self):
        p = IsingProblem(30, {(0, 1): 1.0})
        with pytest.raises(ValueError, match="infeasible"):
            p.values()


class TestQuboConversion:
    def test_objective_preserved(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(4, 4))
        problem = qubo_to_ising(q)
        q_sym = (q + q.T) / 2.0
        for idx in range(16):
            x = np.array([(idx >> i) & 1 for i in range(4)], dtype=float)
            qubo_value = float(x @ q_sym @ x)
            bits = format(idx, "04b")
            assert problem.value_of_bits(bits) == pytest.approx(qubo_value)

    def test_min_sense_negates(self):
        q = np.array([[1.0, 0.0], [0.0, 2.0]])
        pmax = qubo_to_ising(q, sense="max")
        pmin = qubo_to_ising(q, sense="min")
        assert pmin.max_value() == pytest.approx(0.0)  # min of f is 0
        assert pmax.max_value() == pytest.approx(3.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            qubo_to_ising(np.zeros((2, 3)))

    def test_bad_sense(self):
        with pytest.raises(ValueError, match="sense"):
            qubo_to_ising(np.zeros((2, 2)), sense="saddle")


class TestMaxCutBridge:
    def test_values_match_cut_values(self):
        mc = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        ising = maxcut_to_ising(mc)
        np.testing.assert_allclose(ising.values(), mc.cut_values())

    def test_program_weights_match_maxcut_program(self):
        mc = MaxCutProblem(3, [(0, 1), (1, 2)])
        ising = maxcut_to_ising(mc)
        a = mc.to_program([0.5], [0.3])
        b = ising.to_program([0.5], [0.3])
        assert a.edges == b.edges
        assert b.linear == {}


class TestQAOAEndToEnd:
    def test_cost_unitary_matches_hamiltonian(self):
        """The compiled-program state must equal exp(-i*gamma*C)|+> up to
        the mixer — verified by comparing the diagonal expectation against
        direct phase evolution."""
        problem = IsingProblem(
            3, {(0, 1): 0.8, (1, 2): -0.6}, {0: 0.5, 2: -0.25}
        )
        gamma, beta = 0.7, 0.0  # beta=0: mixer = identity (RX(0))
        program = problem.to_program([gamma], [beta])
        circuit = build_qaoa_circuit(program, measure=False)
        sim = StatevectorSimulator()
        state = sim.run(circuit)
        # Reference: |+...+> with phases exp(-i*gamma*C(z)).
        n = problem.num_spins
        reference = np.exp(-1j * gamma * problem.values()) / np.sqrt(2 ** n)
        # Equal up to global phase.
        idx = np.argmax(np.abs(reference))
        phase = state[idx] / reference[idx]
        np.testing.assert_allclose(state, phase * reference, atol=1e-10)

    def test_optimised_ising_qaoa_beats_random_guessing(self):
        rng = np.random.default_rng(3)
        problem = IsingProblem(
            5,
            {(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0, (3, 4): -1.0, (0, 4): 1.0},
            {1: 0.5, 3: -0.5},
        )
        values = problem.values()
        mean_random = float(values.mean())

        from scipy import optimize

        sim = StatevectorSimulator()

        def objective(params):
            prog = problem.to_program([params[0]], [params[1]])
            circ = build_qaoa_circuit(prog, measure=False)
            return -sim.expectation_diagonal(circ, values)

        best = min(
            (
                optimize.minimize(
                    objective,
                    x0=rng.uniform(-1, 1, size=2),
                    method="L-BFGS-B",
                )
                for _ in range(4)
            ),
            key=lambda r: r.fun,
        )
        assert -best.fun > mean_random + 0.3

    def test_compilation_flows_accept_ising_programs(self):
        from repro.compiler import compile_with_method
        from repro.hardware import ring_device

        problem = IsingProblem(
            4, {(0, 1): 1.0, (1, 2): -0.5, (2, 3): 0.7, (0, 3): -0.2},
            {0: 0.1, 2: -0.3},
        )
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(6), "ic", rng=np.random.default_rng(1)
        )
        compiled.validate()
        ops = compiled.circuit.count_ops()
        assert ops["cphase"] == 4
        assert ops["rz"] == 2  # the two linear terms

    def test_compiled_ising_distribution_preserved(self):
        from repro.compiler import compile_with_method
        from repro.hardware import ring_device

        problem = IsingProblem(
            4, {(0, 1): 1.0, (1, 2): -0.5, (0, 3): 0.4}, {1: 0.6}
        )
        program = problem.to_program([0.8], [0.4])
        compiled = compile_with_method(
            program, ring_device(6), "ip", rng=np.random.default_rng(2)
        )
        sim = StatevectorSimulator()
        reference = sim.probabilities(build_qaoa_circuit(program, measure=False))
        phys = sim.probabilities(compiled.circuit.only_unitary())
        mapping = compiled.final_mapping
        observed = np.zeros(16)
        for idx in range(len(phys)):
            logical = 0
            for q in range(4):
                if (idx >> mapping[q]) & 1:
                    logical |= 1 << q
            observed[logical] += phys[idx]
        np.testing.assert_allclose(observed, reference, atol=1e-9)
