"""Unit tests for the :mod:`repro.api` facade.

Covers the redesigned public surface: keyword-only signatures, input
coercion (device names, couplings, calibrations, targets), the typed
result objects, the deprecation shims, and a snapshot of the facade's
export surface so accidental API drift fails loudly.
"""

import inspect
import warnings

import numpy as np
import pytest

import repro
from repro.api import CompileResult, EvalResult, compile, evaluate
from repro.hardware import get_device, melbourne_calibration
from repro.hardware.target import Target, intern_target
from repro.qaoa import MaxCutProblem

SQUARE = [(0, 1), (1, 2), (2, 3), (0, 3)]


def _problem():
    return MaxCutProblem(4, SQUARE)


class TestSignatures:
    def test_compile_is_keyword_only(self):
        params = inspect.signature(compile).parameters
        assert params["problem"].kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
        for name, param in params.items():
            if name == "problem":
                continue
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, name

    def test_evaluate_is_keyword_only(self):
        params = inspect.signature(evaluate).parameters
        for name, param in params.items():
            if name == "compiled":
                continue
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, name

    def test_positional_target_rejected(self):
        with pytest.raises(TypeError):
            compile(_problem(), "linear_4")


class TestCompile:
    def test_device_name_target(self):
        result = compile(_problem(), target="linear_4")
        assert isinstance(result, CompileResult)
        assert isinstance(result.target, Target)
        assert result.method == "ic"
        assert result.problem is not None
        assert result.depth() > 0 and result.gate_count() > 0
        assert result.swap_count >= 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            compile(_problem(), target="linear_4", method="magic")

    def test_coupling_and_calibration_targets(self):
        coupling = get_device("ibmq_16_melbourne")
        calibration = melbourne_calibration()
        by_coupling = compile(
            _problem(), target=coupling, calibration=calibration, method="vic"
        )
        by_calibration = compile(_problem(), target=calibration, method="vic")
        assert by_coupling.target is by_calibration.target  # interned

    def test_auto_calibration_melbourne(self):
        result = compile(
            _problem(), target="ibmq_16_melbourne", calibration="auto"
        )
        assert result.target.calibration is not None

    def test_target_object_passthrough(self):
        target = intern_target(get_device("linear_4"))
        result = compile(_problem(), target=target)
        assert result.target is target

    def test_conflicting_calibration_rejected(self):
        target = intern_target(get_device("linear_4"))
        with pytest.raises(ValueError, match="conflicts"):
            compile(
                _problem(),
                target=target,
                calibration=melbourne_calibration(),
            )

    def test_angle_validation(self):
        with pytest.raises(ValueError, match="together"):
            compile(_problem(), target="linear_4", gammas=[0.7])
        program = _problem().to_program([0.7], [0.35])
        with pytest.raises(ValueError, match="baked"):
            compile(program, target="linear_4", gammas=[0.7], betas=[0.3])

    def test_ising_problem_accepted(self):
        """The unified frontend: any Problem with to_program compiles,
        and the originating instance rides along on the result."""
        ising = repro.IsingProblem(
            4, {(0, 1): 0.5, (1, 2): 0.5, (2, 3): 0.5}, {0: 0.25}
        )
        result = compile(ising, target="linear_4")
        assert isinstance(result, CompileResult)
        assert result.problem is ising
        assert result.depth() > 0

    def test_qubo_via_spec_accepted(self):
        problem = repro.problem_from_spec(
            {"qubo": {"matrix": [[1, -1], [-1, 1]]}}
        )
        result = compile(problem, target="linear_4")
        assert result.problem is problem

    def test_rejects_non_problem(self):
        with pytest.raises(TypeError, match="to_program"):
            compile(object(), target="linear_4")


class TestEvaluate:
    def test_noiseless_r0_only(self):
        result = compile(_problem(), target="linear_4")
        scores = evaluate(result, noise=None, shots=256, seed=1)
        assert isinstance(scores, EvalResult)
        assert 0.0 < scores.r0 <= 1.0
        assert scores.rh is None and scores.arg is None

    def test_auto_noise_from_target_calibration(self):
        result = compile(
            _problem(), target="ibmq_16_melbourne", calibration="auto"
        )
        scores = evaluate(result, shots=512, trajectories=4, seed=2)
        assert scores.rh is not None and scores.arg is not None
        assert scores.rh < scores.r0
        assert scores.success_probability is not None
        assert scores.fastpath

    def test_exact_mode_deterministic(self):
        result = compile(
            _problem(), target="ibmq_16_melbourne", calibration="auto"
        )
        a = evaluate(result, mode="exact", trajectories=4, seed=3)
        b = evaluate(result, mode="exact", trajectories=4, seed=3)
        assert a.r0 == b.r0 and a.rh == b.rh

    def test_bad_noise_type_rejected(self):
        result = compile(_problem(), target="linear_4")
        with pytest.raises(TypeError, match="noise must be"):
            evaluate(result, noise=0.01)

    def test_t2_requires_calibration_noise(self):
        from repro.sim import NoiseModel

        result = compile(_problem(), target="linear_4")
        with pytest.raises(ValueError, match="t2_ns"):
            evaluate(result, noise=NoiseModel.ideal(4), t2_ns=1e4)


class TestDeprecationShims:
    def test_compile_qaoa_warns_and_works(self):
        program = _problem().to_program([0.7], [0.35])
        with pytest.warns(DeprecationWarning, match="compile_qaoa"):
            compiled = repro.compile_qaoa(
                program, get_device("linear_4"), rng=np.random.default_rng(0)
            )
        assert compiled.depth() > 0

    def test_compile_with_method_warns_and_works(self):
        program = _problem().to_program([0.7], [0.35])
        with pytest.warns(DeprecationWarning, match="compile_with_method"):
            compiled = repro.compile_with_method(
                program,
                get_device("linear_4"),
                "ic",
                rng=np.random.default_rng(0),
            )
        assert compiled.method.endswith("ic")

    def test_compiler_module_names_stay_silent(self):
        from repro.compiler import compile_with_method as silent

        program = _problem().to_program([0.7], [0.35])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compiled = silent(
                program,
                get_device("linear_4"),
                "ic",
                rng=np.random.default_rng(0),
            )
        assert compiled.method.endswith("ic")

    def test_method_preset_unpacking_warns(self):
        from repro.compiler import METHOD_PRESETS

        with pytest.warns(DeprecationWarning, match="tuple-unpacking"):
            placement, ordering = METHOD_PRESETS["ic"]
        assert placement and ordering


class TestSurfaceSnapshot:
    def test_api_module_surface(self):
        import repro.api

        assert sorted(repro.api.__all__) == [
            "CompileResult",
            "EvalResult",
            "compile",
            "compile_qaoa",
            "compile_with_method",
            "evaluate",
        ]

    def test_compile_method_accepts_registry_names_and_specs(self):
        """method= resolves registered names through the registry and
        takes a PipelineSpec directly (labelled placement+ordering)."""
        from repro.compiler import PipelineSpec, available_methods

        assert "swap_network" in available_methods()
        assert "parity" in available_methods()
        by_name = compile(_problem(), target="ring_8", method="swap_network")
        assert by_name.method == "swap_network"
        spec = PipelineSpec(placement="qaim", ordering="ic")
        by_spec = compile(_problem(), target="ring_8", method=spec)
        assert by_spec.method == "qaim+ic"

    def test_top_level_facade_names(self):
        for name in (
            "compile",
            "evaluate",
            "CompileResult",
            "EvalResult",
            "evaluate_fast",
            "EvalOutcome",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_top_level_compile_is_the_facade(self):
        assert repro.compile is compile
        assert repro.evaluate is evaluate
