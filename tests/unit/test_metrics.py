"""Unit tests for circuit-quality metrics."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import compile_with_method
from repro.compiler.metrics import measure_compiled, success_probability
from repro.hardware import Calibration, linear_device, uniform_calibration
from repro.qaoa import MaxCutProblem


class TestSuccessProbability:
    def test_single_cnot(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        qc = QuantumCircuit(2).cnot(0, 1)
        assert success_probability(qc, cal) == pytest.approx(0.9)

    def test_product_over_cnots(self):
        cal = uniform_calibration(linear_device(3), cnot_error=0.1)
        qc = QuantumCircuit(3).cnot(0, 1).cnot(1, 2).cnot(0, 1)
        assert success_probability(qc, cal) == pytest.approx(0.9 ** 3)

    def test_per_edge_variation_honoured(self):
        g = linear_device(3)
        cal = Calibration(g, {(0, 1): 0.1, (1, 2): 0.2})
        qc = QuantumCircuit(3).cnot(0, 1).cnot(1, 2)
        assert success_probability(qc, cal) == pytest.approx(0.9 * 0.8)

    def test_u1_gates_are_free(self):
        cal = uniform_calibration(
            linear_device(2), cnot_error=0.0, single_qubit_error=0.5
        )
        qc = QuantumCircuit(2).u1(0.3, 0).u1(0.5, 1)
        assert success_probability(qc, cal) == pytest.approx(1.0)

    def test_u2_u3_use_single_qubit_rate(self):
        cal = uniform_calibration(
            linear_device(2), cnot_error=0.0, single_qubit_error=0.01
        )
        qc = QuantumCircuit(2).u2(0.1, 0.2, 0).u3(0.1, 0.2, 0.3, 1)
        assert success_probability(qc, cal) == pytest.approx(0.99 ** 2)

    def test_single_qubit_excludable(self):
        cal = uniform_calibration(
            linear_device(2), cnot_error=0.1, single_qubit_error=0.01
        )
        qc = QuantumCircuit(2).u3(0.1, 0.2, 0.3, 0).cnot(0, 1)
        assert success_probability(
            qc, cal, include_single_qubit=False
        ) == pytest.approx(0.9)

    def test_readout_optional(self):
        cal = uniform_calibration(
            linear_device(2), cnot_error=0.0, readout_error=0.05
        )
        qc = QuantumCircuit(2).measure_all()
        assert success_probability(qc, cal) == pytest.approx(1.0)
        assert success_probability(
            qc, cal, include_readout=True
        ) == pytest.approx(0.95 ** 2)

    def test_high_level_circuit_lowered_first(self):
        """A CPHASE counts as two CNOTs (Section IV-D's 0.9 -> 0.81)."""
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        qc = QuantumCircuit(2).cphase(0.3, 0, 1)
        assert success_probability(qc, cal) == pytest.approx(0.81)

    def test_swap_counts_as_three_cnots(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        qc = QuantumCircuit(2).swap(0, 1)
        assert success_probability(qc, cal) == pytest.approx(0.9 ** 3)

    def test_empty_circuit_is_certain(self):
        cal = uniform_calibration(linear_device(2))
        assert success_probability(QuantumCircuit(2), cal) == 1.0


class TestMeasureCompiled:
    def _compiled(self, cal=None):
        problem = MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])
        program = problem.to_program([0.5], [0.3])
        return compile_with_method(
            program,
            linear_device(4),
            "qaim",
            rng=np.random.default_rng(0),
        )

    def test_fields_populated(self):
        compiled = self._compiled()
        metrics = measure_compiled(compiled)
        assert metrics.method == "qaim+random"
        assert metrics.depth > 0
        assert metrics.gate_count > metrics.cnot_count > 0
        assert metrics.compile_time > 0
        assert metrics.success_probability is None

    def test_success_probability_with_calibration(self):
        compiled = self._compiled()
        cal = uniform_calibration(linear_device(4), cnot_error=0.02)
        metrics = measure_compiled(compiled, calibration=cal)
        assert 0.0 < metrics.success_probability < 1.0

    def test_cnot_count_consistent_with_native(self):
        compiled = self._compiled()
        metrics = measure_compiled(compiled)
        assert metrics.cnot_count == compiled.native().count_ops()["cnot"]

    def test_timing_fields_default_off(self):
        metrics = measure_compiled(self._compiled())
        assert metrics.execution_time_ns is None
        assert metrics.decoherence_factor is None

    def test_timing_fields_populated_when_requested(self):
        metrics = measure_compiled(self._compiled(), include_timing=True)
        assert metrics.execution_time_ns > 0
        assert 0.0 < metrics.decoherence_factor <= 1.0

    def test_tighter_t2_lowers_survival(self):
        compiled = self._compiled()
        loose = measure_compiled(compiled, include_timing=True, t2_ns=1e6)
        tight = measure_compiled(compiled, include_timing=True, t2_ns=1e4)
        assert tight.decoherence_factor < loose.decoherence_factor
