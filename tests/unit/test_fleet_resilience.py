"""Unit tests for the fleet resilience layer.

Covers the circuit-breaker state machine, failure-triggered migration,
the SLO-aware degraded-recompile ladder, the crash-safe scheduler
journal (including torn-tail tolerance and exact resume equality after
both an in-process interrupt and a real SIGKILL), and the regression
the layer exists to fix: a device that trips its breaker must re-earn
traffic after the cooldown instead of staying ineligible forever.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments.chaos import (
    FleetScenario,
    ScriptedFleetExecutor,
    chaos_fleet,
    chaos_profiles,
    chaos_stream,
    default_fleet_scenarios,
    run_fleet_chaos,
)
from repro.fleet import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_DEGRADE_LADDER,
    SLO,
    CircuitBreaker,
    DeviceSlot,
    FleetJob,
    FleetSpec,
    Scheduler,
    SchedulerJournal,
    downgrade_job,
    stream_fingerprint,
)
from repro.qaoa import MaxCutProblem
from repro.service import CompileJob
from repro.service.job import JobResult, encode_envelope


def _program(n=5):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return MaxCutProblem(n, edges).to_program([0.7], [0.35])


def _fleet_job(i=0, slo=SLO(), method="ic"):
    job = CompileJob(
        program=_program(),
        device="ibmq_20_tokyo",
        method=method,
        seed=i,
        job_id=f"t-{i:03d}",
    )
    return FleetJob(job=job, slo=slo)


class _VirtualExecute:
    """Scripted executor stamping a fixed ``virtual_exec_ms``, so the
    scheduler's clock — and breaker open/half-open windows — are exact."""

    def __init__(self, fail_ids=(), exec_ms=1.0):
        self.fail_ids = set(fail_ids)
        self.exec_ms = float(exec_ms)
        self.calls = []

    def __call__(self, job):
        self.calls.append(job.job_id)
        key = job.content_hash()
        metrics = {"virtual_exec_ms": self.exec_ms}
        if job.job_id in self.fail_ids:
            return JobResult(
                job=job, key=key, ok=False, attempts=1,
                error="scripted failure", error_kind="exception",
                metrics=metrics,
            )
        return JobResult(
            job=job, key=key, ok=True, attempts=1, metrics=metrics,
            payload=encode_envelope("null", dict(metrics)),
        )


# ----------------------------------------------------------------------
# circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=100.0)
        breaker.record_failure(0.0, "boom")
        breaker.record_failure(1.0, "boom")
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allows(2.0)

    def test_threshold_opens_with_reason(self):
        breaker = CircuitBreaker(
            device="d0", failure_threshold=2, cooldown_ms=100.0
        )
        breaker.record_failure(0.0, "timeout")
        breaker.record_failure(10.0, "timeout")
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allows(50.0)
        assert "consecutive failures" in breaker.last_reason
        assert breaker.trips == 1

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=100.0)
        breaker.record_failure(0.0, "boom")
        breaker.record_success(1.0)
        breaker.record_failure(2.0, "boom")
        assert breaker.state == BREAKER_CLOSED

    def test_cooldown_half_opens_then_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0, "boom")
        assert breaker.poll(50.0) == BREAKER_OPEN
        assert breaker.poll(100.0) == BREAKER_HALF_OPEN
        assert breaker.allows(100.0)
        breaker.record_success(101.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.recoveries == 1

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(0.0, "boom")
        breaker.poll(100.0)
        breaker.record_failure(100.0, "still broken")
        assert breaker.state == BREAKER_OPEN
        assert breaker.poll(150.0) == BREAKER_OPEN
        assert breaker.poll(200.0) == BREAKER_HALF_OPEN
        assert breaker.trips == 2

    def test_none_cooldown_is_permanent_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=None)
        breaker.record_failure(0.0, "boom")
        assert breaker.poll(1e12) == BREAKER_OPEN
        assert not breaker.allows(1e12)

    def test_transitions_are_recorded(self):
        seen = []
        breaker = CircuitBreaker(
            device="d0", failure_threshold=1, cooldown_ms=50.0,
            on_transition=seen.append,
        )
        breaker.record_failure(0.0, "boom")
        breaker.poll(50.0)
        breaker.record_success(51.0)
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]
        assert [t.to_dict()["to"] for t in seen] == [
            BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED,
        ]


class TestHalfOpenProbes:
    def test_failures_below_budget_stay_half_open(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ms=100.0, half_open_max_probes=3
        )
        breaker.record_failure(0.0, "boom")
        assert breaker.poll(100.0) == BREAKER_HALF_OPEN
        breaker.record_failure(101.0, "flaky")
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allows(102.0)
        breaker.record_failure(103.0, "flaky")
        assert breaker.state == BREAKER_HALF_OPEN
        # Third failed probe exhausts the budget and re-opens.
        breaker.record_failure(104.0, "flaky")
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2

    def test_one_success_closes_with_probes_remaining(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ms=100.0, half_open_max_probes=3
        )
        breaker.record_failure(0.0, "boom")
        breaker.poll(100.0)
        breaker.record_failure(101.0, "flaky")
        breaker.record_success(102.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.recoveries == 1

    def test_probe_budget_resets_each_half_open_window(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ms=100.0, half_open_max_probes=2
        )
        breaker.record_failure(0.0, "boom")
        breaker.poll(100.0)
        breaker.record_failure(101.0, "flaky")
        breaker.record_failure(102.0, "flaky")
        assert breaker.state == BREAKER_OPEN
        # Next half-open window gets a fresh budget of 2 again.
        assert breaker.poll(202.0) == BREAKER_HALF_OPEN
        breaker.record_failure(203.0, "flaky")
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allows(204.0)

    def test_zero_probe_budget_rejected(self):
        with pytest.raises(ValueError, match="half_open_max_probes"):
            CircuitBreaker(
                failure_threshold=1, cooldown_ms=100.0, half_open_max_probes=0
            )

    def test_snapshot_and_describe_expose_probe_budget(self):
        breaker = CircuitBreaker(
            device="d0", failure_threshold=1, cooldown_ms=100.0,
            half_open_max_probes=2,
        )
        breaker.record_failure(0.0, "boom")
        breaker.poll(100.0)
        breaker.record_failure(101.0, "flaky")
        snapshot = breaker.snapshot()
        assert snapshot["half_open_failures"] == 1
        assert snapshot["half_open_max_probes"] == 2
        assert "awaiting probe 2/2" in breaker.describe()


# ----------------------------------------------------------------------
# degraded recompile primitives
# ----------------------------------------------------------------------
class TestDowngradeJob:
    def test_method_rung_produces_note(self):
        job = _fleet_job(method="vic")
        downgraded = downgrade_job(job, {"method": "ip"})
        assert downgraded is not None
        alt, note = downgraded
        assert alt.method == "ip"
        assert "vic->ip" in note
        assert job.method == "vic"  # original untouched

    def test_noop_rung_returns_none(self):
        job = _fleet_job(method="ip")
        assert downgrade_job(job, {"method": "ip"}) is None

    def test_unknown_rung_key_rejected(self):
        with pytest.raises(ValueError):
            downgrade_job(_fleet_job(), {"optimizer": "off"})

    def test_default_ladder_shape(self):
        assert DEFAULT_DEGRADE_LADDER[0] == {"method": "ip"}
        assert "packing_limit" in DEFAULT_DEGRADE_LADDER[1]


# ----------------------------------------------------------------------
# breaker recovery through the scheduler (the PR's regression target)
# ----------------------------------------------------------------------
class TestBreakerRecovery:
    def test_tripped_device_re_earns_traffic_after_cooldown(self):
        """A device that trips its breaker must serve again after the
        cooldown — the pre-resilience permanent ineligibility is gone."""
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(i) for i in range(8)]
        execute = _VirtualExecute(
            fail_ids={j.job_id for j in jobs[:3]}, exec_ms=1.0
        )
        scheduler = Scheduler(
            fleet, "least-loaded",
            interarrival_ms=50.0,
            max_consecutive_failures=3,
            breaker_cooldown_ms=100.0,
            execute_fn=execute,
        )
        report = scheduler.run(jobs)

        # jobs 0-2 fail (opening the breaker at t=100), the t=150 job
        # arrives inside the cooldown and is rejected, the t=200 job is
        # the half-open probe that closes the breaker, and the
        # remainder are served normally.
        assert report.placed == 7
        assert len(report.rejections) == 1
        for rejection in report.rejections:
            assert rejection.kind == "no_eligible_device"
            assert "breaker open" in rejection.detail
        summary = report.summary()
        assert summary["failed"] == 3
        assert summary["ok"] == 4
        breaker = report.devices[0].breaker
        assert breaker["trips"] == 1
        assert breaker["recoveries"] == 1
        assert breaker["state"] == BREAKER_CLOSED
        assert report.devices[0].eligible

    def test_flapping_device_re_earns_traffic_with_k_probes(self, tmp_path):
        """With ``half_open_max_probes=2`` a device whose first recovery
        probe fails stays half-open, re-earns traffic on the second
        probe, and every probe is visible in the journal."""
        journal_path = tmp_path / "run.jsonl"
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(i) for i in range(8)]
        # jobs 0-2 trip the breaker; job 4 is the flap (failed probe).
        execute = _VirtualExecute(
            fail_ids={jobs[i].job_id for i in (0, 1, 2, 4)}, exec_ms=1.0
        )
        scheduler = Scheduler(
            fleet, "least-loaded",
            interarrival_ms=50.0,
            max_consecutive_failures=3,
            breaker_cooldown_ms=100.0,
            half_open_max_probes=2,
            execute_fn=execute,
            journal=journal_path,
        )
        report = scheduler.run(jobs)

        # Only the in-cooldown job (t=150) is rejected; the failed probe
        # at t=200 does NOT re-open the breaker, so the t=250 job is the
        # second probe and it closes the breaker.
        assert report.placed == 7
        assert len(report.rejections) == 1
        breaker = report.devices[0].breaker
        assert breaker["state"] == BREAKER_CLOSED
        assert breaker["trips"] == 1
        assert breaker["recoveries"] == 1
        assert breaker["half_open_max_probes"] == 2
        assert report.devices[0].eligible

        entries = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        transitions = [
            (e["from"], e["to"]) for e in entries if e["kind"] == "breaker"
        ]
        assert transitions == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]
        # Both probes (indices 4 and 5) were executed and journaled.
        probe_records = [
            e for e in entries
            if e["kind"] == "complete" and e["index"] in (4, 5)
        ]
        assert len(probe_records) == 2
        assert not probe_records[0]["record"]["ok"]
        assert probe_records[1]["record"]["ok"]

    def test_none_cooldown_keeps_legacy_permanent_ineligibility(self):
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(i) for i in range(6)]
        execute = _VirtualExecute(
            fail_ids={j.job_id for j in jobs[:3]}, exec_ms=1.0
        )
        scheduler = Scheduler(
            fleet, "least-loaded",
            interarrival_ms=50.0,
            breaker_cooldown_ms=None,
            execute_fn=execute,
        )
        report = scheduler.run(jobs)
        assert report.placed == 3
        assert len(report.rejections) == 3
        assert all(
            "consecutive failures" in r.detail for r in report.rejections
        )
        assert not report.devices[0].eligible


# ----------------------------------------------------------------------
# migration
# ----------------------------------------------------------------------
def _two_slot_fleet():
    return FleetSpec(
        [DeviceSlot("alpha", "ring_8"), DeviceSlot("beta", "linear_8")]
    )


def _scripted(fleet, stream, scenario):
    profiles = {
        k: v for k, v in chaos_profiles().items() if k in ("alpha", "beta")
    }
    return ScriptedFleetExecutor(fleet, stream, scenario, profiles=profiles)


class TestMigration:
    def test_failed_placement_migrates_to_survivor(self):
        fleet = _two_slot_fleet()
        jobs = [_fleet_job(0)]
        scenario = FleetScenario(name="alpha-dead", dies_at={"alpha": 0})
        scheduler = Scheduler(
            fleet, "greedy",
            interarrival_ms=10.0,
            execute_fn=_scripted(fleet, jobs, scenario),
        )
        report = scheduler.run(jobs)

        assert report.placed == 1
        record = report.records[0]
        assert record.ok
        assert record.migrations == 1
        assert record.original_device == "alpha"
        assert record.device_label == "beta"
        assert [a["device_label"] for a in record.attempts] == [
            "alpha", "beta",
        ]
        assert [a["ok"] for a in record.attempts] == [False, True]
        # the failed attempt's virtual time is part of the observed
        # latency — migration is not a free retry
        assert record.observed_ms >= record.exec_ms

    def test_zero_migration_budget_records_failure(self):
        fleet = _two_slot_fleet()
        jobs = [_fleet_job(0)]
        scenario = FleetScenario(name="alpha-dead", dies_at={"alpha": 0})
        scheduler = Scheduler(
            fleet, "greedy",
            interarrival_ms=10.0,
            max_migrations=0,
            execute_fn=_scripted(fleet, jobs, scenario),
        )
        report = scheduler.run(jobs)
        record = report.records[0]
        assert not record.ok
        assert record.migrations == 0
        assert record.device_label == "alpha"

    def test_migration_counts_in_fleet_report(self):
        jobs = 45
        report = run_fleet_chaos(
            default_fleet_scenarios(jobs)[0], jobs=jobs
        )
        assert report.migrations() > 0
        assert report.summary()["migrations"] == report.migrations()


# ----------------------------------------------------------------------
# SLO-aware degraded recompile
# ----------------------------------------------------------------------
class TestDegradedRecompile:
    def test_degrades_to_cheaper_method_when_slo_at_risk(self):
        """Cold-start vic predicts 50*1.4=70ms; an SLO of 50ms rejects
        it everywhere, but the ip rung predicts 50*0.7=35ms and fits."""
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(0, slo=SLO(max_latency_ms=50.0), method="vic")]
        execute = _VirtualExecute(exec_ms=30.0)
        scheduler = Scheduler(
            fleet, "least-loaded", execute_fn=execute
        )
        report = scheduler.run(jobs)

        assert report.placed == 1
        record = report.records[0]
        assert record.ok
        assert record.method == "ip"
        assert record.downgrades
        assert "slo degraded recompile" in record.downgrades[0]
        assert report.summary()["downgrades"] == 1

    def test_empty_ladder_keeps_rejection(self):
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(0, slo=SLO(max_latency_ms=50.0), method="vic")]
        scheduler = Scheduler(
            fleet, "least-loaded",
            degrade_ladder=(),
            execute_fn=_VirtualExecute(exec_ms=30.0),
        )
        report = scheduler.run(jobs)
        assert report.placed == 0
        assert report.rejections[0].kind == "slo_unsatisfiable"


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SchedulerJournal(path) as journal:
            journal.append({"kind": "meta", "policy": "greedy"})
            journal.append({"kind": "admit", "index": 0})
        records = SchedulerJournal(path).read()
        assert [r["kind"] for r in records] == ["meta", "admit"]

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SchedulerJournal(path) as journal:
            journal.append({"kind": "meta"})
            journal.append({"kind": "admit", "index": 0})
        with open(path, "a") as fh:
            fh.write('{"kind": "complete", "ind')  # the crash mid-write
        records = SchedulerJournal(path).read()
        assert len(records) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json at all\n{"kind": "meta"}\n')
        with pytest.raises(ValueError):
            SchedulerJournal(path).read()

    def test_settled_maps_outcomes_by_index(self, tmp_path):
        records = [
            {"kind": "meta", "policy": "greedy"},
            {"kind": "admit", "index": 0},
            {"kind": "complete", "index": 0, "record": {"job_id": "a"}},
            {"kind": "admit", "index": 1},
            {"kind": "reject", "index": 1, "rejection": {"job_id": "b"}},
            {"kind": "admit", "index": 2},  # crashed mid-flight
        ]
        meta, outcomes = SchedulerJournal.settled(records)
        assert meta["policy"] == "greedy"
        assert outcomes[0] == ("record", {"job_id": "a"})
        assert outcomes[1] == ("rejection", {"job_id": "b"})
        assert 2 not in outcomes

    def test_fingerprint_is_order_and_content_sensitive(self):
        a = [_fleet_job(0), _fleet_job(1)]
        assert stream_fingerprint(a) == stream_fingerprint(list(a))
        assert stream_fingerprint(a) != stream_fingerprint(a[::-1])
        assert stream_fingerprint(a) != stream_fingerprint(a[:1])

    def test_resume_without_journal_raises(self):
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        scheduler = Scheduler(
            fleet, "least-loaded", execute_fn=_VirtualExecute()
        )
        with pytest.raises(ValueError, match="journal"):
            scheduler.run([_fleet_job(0)], resume=True)

    def test_resume_rejects_mismatched_stream(self, tmp_path):
        path = tmp_path / "j.jsonl"
        fleet = FleetSpec([DeviceSlot("solo", "ring_8")])
        jobs = [_fleet_job(i) for i in range(3)]
        Scheduler(
            fleet, "least-loaded", execute_fn=_VirtualExecute(),
            journal=path,
        ).run(jobs)
        other = [_fleet_job(i + 100) for i in range(3)]
        scheduler = Scheduler(
            fleet, "least-loaded", execute_fn=_VirtualExecute(),
            journal=path,
        )
        with pytest.raises(ValueError, match="fingerprint"):
            scheduler.run(other, resume=True)


# ----------------------------------------------------------------------
# crash + resume equality
# ----------------------------------------------------------------------
JOBS = 40
CRASH_AFTER = 14


def _run_full(stream, scenario, journal=None):
    return run_fleet_chaos(
        scenario, fleet=chaos_fleet(), stream=stream, journal=journal
    )


def _report_signature(report):
    return (
        [(r.job_id, r.device_label) for r in report.records],
        {d.label: d.placed for d in report.devices},
        report.makespan_ms,
        [r.job_id for r in report.rejections],
    )


class TestCrashResume:
    def test_interrupted_run_resumes_to_identical_report(self, tmp_path):
        scenario = default_fleet_scenarios(JOBS)[0]
        stream = chaos_stream(JOBS)
        full = _run_full(stream, scenario)

        fleet = chaos_fleet()
        scripted = ScriptedFleetExecutor(fleet, stream, scenario)
        calls = {"n": 0}

        def interrupted(job):
            calls["n"] += 1
            if calls["n"] > CRASH_AFTER:
                raise KeyboardInterrupt
            return scripted(job)

        journal = tmp_path / "crash.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_fleet_chaos(
                scenario, fleet=fleet, stream=stream,
                journal=journal, execute_fn=interrupted,
            )

        resumed = run_fleet_chaos(
            scenario, fleet=chaos_fleet(), stream=stream,
            journal=journal, resume=True,
        )
        assert resumed.resumed > 0
        assert _report_signature(resumed) == _report_signature(full)

    def test_sigkilled_run_resumes_to_identical_report(self, tmp_path):
        """The real thing: SIGKILL mid-run (no atexit, no finally), then
        resume from the fsynced journal in a fresh process."""
        journal = tmp_path / "kill.jsonl"
        script = f"""
import os, signal
from repro.experiments.chaos import (
    ScriptedFleetExecutor, chaos_fleet, chaos_stream,
    default_fleet_scenarios, run_fleet_chaos,
)
scenario = default_fleet_scenarios({JOBS})[0]
stream = chaos_stream({JOBS})
fleet = chaos_fleet()
scripted = ScriptedFleetExecutor(fleet, stream, scenario)
calls = [0]
def execute(job):
    calls[0] += 1
    if calls[0] > {CRASH_AFTER}:
        os.kill(os.getpid(), signal.SIGKILL)
    return scripted(job)
run_fleet_chaos(
    scenario, fleet=fleet, stream=stream,
    journal={str(journal)!r}, execute_fn=execute,
)
raise SystemExit("SIGKILL never fired")
"""
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        journal_records = SchedulerJournal(journal).read()
        assert any(r["kind"] == "complete" for r in journal_records)

        scenario = default_fleet_scenarios(JOBS)[0]
        stream = chaos_stream(JOBS)
        full = _run_full(stream, scenario)
        resumed = run_fleet_chaos(
            scenario, fleet=chaos_fleet(), stream=stream,
            journal=journal, resume=True,
        )
        assert resumed.resumed > 0
        assert _report_signature(resumed) == _report_signature(full)

    def test_journal_is_valid_jsonl_during_run(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        scenario = default_fleet_scenarios(JOBS)[0]
        stream = chaos_stream(JOBS)
        run_fleet_chaos(
            scenario, fleet=chaos_fleet(), stream=stream, journal=journal
        )
        lines = journal.read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds[0] == "meta"
        assert "complete" in kinds
        assert "place" in kinds
        assert "breaker" in kinds
