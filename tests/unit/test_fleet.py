"""Unit tests for the fleet layer: SLOs, specs, policies, admission.

Admission-control and policy edge cases use an injected fake executor
(``execute_fn``) so scheduler behaviour — rejections, eligibility loss,
virtual-clock accounting — is tested without paying for real compiles.
End-to-end placement against real devices is covered separately in
:mod:`tests.integration.test_fleet_flow`.
"""

import json

import pytest

from repro.fleet import (
    SLO,
    SLO_TIERS,
    BestFidelity,
    EwmaLatencyModel,
    Candidate,
    DeviceSlot,
    FleetJob,
    FleetSpec,
    GreedyFirstFit,
    LeastLoaded,
    Rejection,
    Scheduler,
    bind_job,
    default_fleet,
    fleet_from_dict,
    fleet_jobs_from_jsonl,
    get_policy,
    load_fleet_json,
    resolve_device_name,
    run_fleet,
    slo_from_dict,
    synthetic_stream,
)
from repro.service import CompileJob, OptimizeJob
from repro.service.job import JobResult, encode_envelope
from repro.qaoa import MaxCutProblem


def _program(n=5):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return MaxCutProblem(n, edges).to_program([0.7], [0.35])


def _fleet_job(i=0, slo=SLO()):
    job = CompileJob(
        program=_program(),
        device="ibmq_20_tokyo",
        method="ic",
        seed=i,
        job_id=f"t-{i:03d}",
    )
    return FleetJob(job=job, slo=slo)


class _FakeExecute:
    """Scripted executor; the engine measures wall latency itself, so
    exec times in these tests are real-but-tiny and always positive."""

    def __init__(self, fail_ids=(), metrics=None):
        self.fail_ids = set(fail_ids)
        self.metrics = metrics or {}
        self.calls = []

    def __call__(self, job):
        self.calls.append(job.job_id)
        key = job.content_hash()
        if job.job_id in self.fail_ids:
            return JobResult(
                job=job, key=key, ok=False, attempts=1,
                error="scripted failure", error_kind="exception",
            )
        metrics = dict(self.metrics)
        return JobResult(
            job=job, key=key, ok=True, attempts=1, metrics=metrics,
            payload=encode_envelope("null", dict(metrics)),
        )


# ----------------------------------------------------------------------
# SLO
# ----------------------------------------------------------------------
class TestSLO:
    def test_trivial_and_tiers(self):
        assert SLO().is_trivial
        assert not SLO(max_latency_ms=10.0).is_trivial
        for name in ("gold", "silver", "bronze", "best-effort"):
            assert name in SLO_TIERS
        assert SLO_TIERS["best-effort"].is_trivial
        assert SLO_TIERS["gold"].max_arg is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_latency_ms"):
            SLO(max_latency_ms=0.0)
        with pytest.raises(ValueError, match="min_success_prob"):
            SLO(min_success_prob=1.5)
        with pytest.raises(ValueError, match="max_arg"):
            SLO(max_arg=-1.0)

    def test_misses_each_dimension(self):
        slo = SLO(max_latency_ms=100.0, min_success_prob=0.5, max_arg=5.0)
        assert slo.misses(50.0, 0.9, 2.0) == []
        misses = slo.misses(150.0, 0.1, 9.0)
        assert len(misses) == 3
        assert any("latency" in m for m in misses)
        assert any("success" in m for m in misses)
        assert any("ARG" in m for m in misses)

    def test_unmeasured_constrained_dimension_is_a_miss(self):
        slo = SLO(min_success_prob=0.5, max_arg=5.0)
        misses = slo.misses(1.0, None, None)
        assert "success probability unmeasured" in misses
        assert "ARG unmeasured" in misses
        # Unconstrained dimensions never miss, measured or not.
        assert SLO(max_latency_ms=10.0).misses(5.0, None, None) == []

    def test_from_dict(self):
        assert slo_from_dict(None).is_trivial
        assert slo_from_dict("gold") == SLO_TIERS["gold"]
        slo = slo_from_dict({"max_latency_ms": 100, "max_arg": 4})
        assert slo.max_latency_ms == 100.0
        assert slo.max_arg == 4.0
        assert slo.min_success_prob is None
        with pytest.raises(ValueError, match="unknown SLO tier"):
            slo_from_dict("platinum")
        with pytest.raises(ValueError, match="unknown SLO field"):
            slo_from_dict({"max_latency": 1})
        with pytest.raises(ValueError, match="unsupported"):
            slo_from_dict(42)


# ----------------------------------------------------------------------
# FleetSpec / DeviceSlot
# ----------------------------------------------------------------------
class TestSpec:
    def test_resolve_parametric_names(self):
        assert resolve_device_name("ring_12").num_qubits == 12
        assert resolve_device_name("linear_7").num_qubits == 7
        assert resolve_device_name("grid_3x4").num_qubits == 12
        assert resolve_device_name("ibmq_20_tokyo").num_qubits == 20
        with pytest.raises(ValueError):
            resolve_device_name("hexagon_9")

    def test_slot_builds_degraded_target(self):
        clean = DeviceSlot("a", "ibmq_20_tokyo").build_target()
        faulty = DeviceSlot(
            "b", "ibmq_20_tokyo",
            faults={"dead_edges": 2, "drift_sigma": 0.5},
            fault_seed=7,
        ).build_target()
        assert clean.num_qubits == 20
        assert faulty.num_qubits <= clean.num_qubits
        assert len(faulty.coupling.edges) < len(clean.coupling.edges)
        assert faulty.warnings  # repair provenance survives

    def test_unique_labels_enforced(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetSpec([
                DeviceSlot("x", "ring_8"),
                DeviceSlot("x", "linear_4"),
            ])

    def test_targets_memoized(self):
        fleet = FleetSpec([DeviceSlot("a", "ring_8")])
        assert fleet.target("a") is fleet.target("a")

    def test_default_fleet_shape(self):
        fleet = default_fleet(seed=5)
        assert len(fleet) >= 5
        labels = [slot.label for slot in fleet]
        assert len(set(labels)) == len(labels)
        assert any(slot.faults for slot in fleet)
        assert any(slot.hardware for slot in fleet)
        for slot in fleet:
            assert fleet.target(slot.label).num_qubits >= 4

    def test_round_trip_json(self, tmp_path):
        fleet = FleetSpec([
            DeviceSlot("clean", "ring_8"),
            DeviceSlot(
                "hurt", "ring_8",
                faults={"drift_sigma": 0.3}, fault_seed=3,
            ),
        ])
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(fleet.to_dict()))
        loaded = load_fleet_json(path)
        assert [s.label for s in loaded] == ["clean", "hurt"]
        assert loaded.target("hurt").fingerprint == \
            fleet.target("hurt").fingerprint

    def test_from_dict_rejects_bad_knob(self):
        with pytest.raises(ValueError, match="fault knob"):
            fleet_from_dict({
                "slots": [
                    {"label": "a", "device": "ring_8",
                     "faults": {"explode": 1}},
                ]
            })


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def _candidate(label, order, **kw):
    defaults = dict(
        hardware=False, backlog=0, wait_ms=0.0, exec_ms=10.0,
        predicted_latency_ms=10.0, predicted_success=None,
        predicted_arg=None,
    )
    defaults.update(kw)
    return Candidate(label=label, order=order, **defaults)


class TestPolicies:
    def test_greedy_picks_first_fit_order(self):
        got = GreedyFirstFit().place([
            _candidate("b", 3), _candidate("a", 1), _candidate("c", 2),
        ])
        assert got.label == "a"

    def test_best_fidelity_prefers_success_then_hardware(self):
        got = BestFidelity().place([
            _candidate("low", 0, predicted_success=0.1),
            _candidate("high", 1, predicted_success=0.9),
            _candidate("unknown", 2),
        ])
        assert got.label == "high"
        # Tied success: hardware beats simulator.
        got = BestFidelity().place([
            _candidate("sim", 0, predicted_success=0.5),
            _candidate("hw", 1, predicted_success=0.5, hardware=True),
        ])
        assert got.label == "hw"

    def test_least_loaded_minimizes_predicted_latency(self):
        got = LeastLoaded().place([
            _candidate("busy", 0, predicted_latency_ms=500.0),
            _candidate("idle", 1, predicted_latency_ms=20.0),
        ])
        assert got.label == "idle"

    def test_get_policy(self):
        assert get_policy("greedy").name == "greedy"
        with pytest.raises(ValueError, match="unknown policy"):
            get_policy("coin-flip")


# ----------------------------------------------------------------------
# Admission control edge cases
# ----------------------------------------------------------------------
class TestAdmission:
    def test_empty_fleet_rejects_everything(self):
        report = run_fleet([_fleet_job(0)], FleetSpec([]))
        assert report.placed == 0
        [rejection] = report.rejections
        assert rejection.kind == "empty_fleet"
        assert report.attainment_rate() == 1.0  # nothing promised

    def test_all_devices_saturated(self):
        fleet = FleetSpec([DeviceSlot("only", "ring_8")])
        scheduler = Scheduler(
            fleet, "greedy",
            device_backlog_limit=2, queue_depth=100,
            execute_fn=_FakeExecute(),
        )
        # interarrival 0: all jobs arrive at t=0, backlog never drains.
        report = scheduler.run([_fleet_job(i) for i in range(5)])
        assert report.placed == 2
        kinds = [r.kind for r in report.rejections]
        assert kinds == ["saturated"] * 3
        assert "backlog limit" in report.rejections[0].detail

    def test_queue_full_bounds_the_fleet(self):
        fleet = FleetSpec([
            DeviceSlot("a", "ring_8"), DeviceSlot("b", "ring_8"),
        ])
        scheduler = Scheduler(
            fleet, "least-loaded",
            queue_depth=3, device_backlog_limit=100,
            execute_fn=_FakeExecute(),
        )
        report = scheduler.run([_fleet_job(i) for i in range(6)])
        assert report.placed == 3
        assert {r.kind for r in report.rejections} == {"queue_full"}

    def test_slo_unsatisfiable_names_every_shortfall(self):
        fleet = FleetSpec([
            DeviceSlot("slow-a", "ring_8"), DeviceSlot("slow-b", "ring_8"),
        ])
        scheduler = Scheduler(
            fleet, "greedy", execute_fn=_FakeExecute(),
        )
        # EWMA cold prior for compile is 50ms >> 1ms bound.
        job = _fleet_job(0, slo=SLO(max_latency_ms=1.0))
        candidate, rejection = scheduler.admit(job)
        assert candidate is None
        assert rejection.kind == "slo_unsatisfiable"
        assert "slow-a" in rejection.detail
        assert "slow-b" in rejection.detail
        assert "predicted latency" in rejection.detail

    def test_no_calibration_cannot_promise_fidelity(self):
        fleet = FleetSpec([
            DeviceSlot("bare", "ring_8", calibration=None),
        ])
        scheduler = Scheduler(fleet, "greedy", execute_fn=_FakeExecute())
        job = _fleet_job(0, slo=SLO(min_success_prob=0.5))
        candidate, rejection = scheduler.admit(job)
        assert rejection is not None
        assert rejection.kind == "slo_unsatisfiable"
        assert "no calibration" in rejection.detail

    def test_eval_infeasible_on_oversized_devices(self):
        fleet = FleetSpec([DeviceSlot("big", "grid_6x6")])
        scheduler = Scheduler(fleet, "greedy", execute_fn=_FakeExecute())
        stream = [j for j in synthetic_stream(12, seed=0)
                  if j.kind == "eval"][:1]
        candidate, rejection = scheduler.admit(stream[0])
        assert rejection is not None
        assert rejection.kind == "no_eligible_device"
        assert "statevector-simulable" in rejection.detail
        # Compile jobs still place on the same slot.
        candidate, rejection = scheduler.admit(_fleet_job(0))
        assert rejection is None
        assert candidate.label == "big"

    def test_failing_device_loses_eligibility_mid_stream(self):
        fleet = FleetSpec([DeviceSlot("flaky", "ring_8")])
        fail_ids = {f"t-{i:03d}" for i in range(3)}
        scheduler = Scheduler(
            fleet, "greedy",
            max_consecutive_failures=3,
            execute_fn=_FakeExecute(fail_ids=fail_ids),
        )
        report = scheduler.run([_fleet_job(i) for i in range(5)])
        # Three failures consume eligibility; the last two jobs bounce.
        assert report.placed == 3
        assert all(not r.ok for r in report.records)
        assert {r.kind for r in report.rejections} == {"no_eligible_device"}
        assert "consecutive failures" in report.rejections[0].detail
        [snapshot] = report.devices
        assert not snapshot.eligible
        assert "exception" in snapshot.ineligible_reason

    def test_recovery_resets_the_failure_counter(self):
        fleet = FleetSpec([DeviceSlot("flaky", "ring_8")])
        scheduler = Scheduler(
            fleet, "greedy",
            max_consecutive_failures=3,
            execute_fn=_FakeExecute(fail_ids={"t-000", "t-002"}),
        )
        report = scheduler.run([_fleet_job(i) for i in range(4)])
        assert report.placed == 4
        assert not report.rejections
        assert report.devices[0].eligible

    def test_mark_ineligible_manually(self):
        fleet = FleetSpec([
            DeviceSlot("a", "ring_8"), DeviceSlot("b", "linear_4"),
        ])
        scheduler = Scheduler(fleet, "greedy", execute_fn=_FakeExecute())
        scheduler.mark_ineligible("a", "maintenance window")
        candidate, rejection = scheduler.admit(_fleet_job(0))
        assert candidate.label == "b"
        scheduler.mark_ineligible("b", "also down")
        candidate, rejection = scheduler.admit(_fleet_job(1))
        assert rejection.kind == "no_eligible_device"
        assert "maintenance window" in rejection.detail

    def test_every_rejection_kind_is_structured(self):
        assert Rejection("j", "queue_full", "why").to_dict()["kind"] == \
            "queue_full"
        with pytest.raises(ValueError):
            Scheduler(FleetSpec([]), "greedy", queue_depth=0)
        with pytest.raises(ValueError, match="unknown policy"):
            Scheduler(FleetSpec([]), "random")


# ----------------------------------------------------------------------
# Virtual-clock accounting and report math
# ----------------------------------------------------------------------
class TestAccounting:
    def test_waits_build_on_a_serial_device(self):
        fleet = FleetSpec([DeviceSlot("one", "ring_8")])
        scheduler = Scheduler(
            fleet, "greedy", execute_fn=_FakeExecute(),
        )
        report = scheduler.run([_fleet_job(i) for i in range(3)])
        waits = [r.wait_ms for r in report.records]
        assert waits[0] == 0.0
        assert waits[1] > 0.0 and waits[2] > waits[1]
        assert report.makespan_ms == pytest.approx(
            sum(r.exec_ms for r in report.records)
        )
        [snapshot] = report.devices
        assert snapshot.utilization == pytest.approx(1.0)

    def test_attainment_counts_only_constrained_jobs(self):
        fleet = FleetSpec([DeviceSlot("one", "ring_8")])
        scheduler = Scheduler(
            fleet, "greedy", execute_fn=_FakeExecute(),
        )
        jobs = [
            _fleet_job(0),  # best-effort: never constrained
            _fleet_job(1, slo=SLO(max_latency_ms=10_000.0)),  # attained
            # ARG-constrained compile job: the quality EWMA is optimistic
            # while unobserved so admission lets it through, but a
            # compile-only result can never measure ARG — a miss.
            _fleet_job(2, slo=SLO(max_arg=1.0)),
        ]
        report = scheduler.run(jobs)
        assert len(report.constrained) == 2
        assert len(report.attained) == 1
        assert report.attainment_rate() == 0.5
        summary = report.summary()
        assert summary["misses"] == {"arg": 1}
        assert report.render()  # smoke: tables format

    def test_placement_stamped_through_result_and_envelope(self):
        from repro.service import ResultCache
        from repro.service.job import decode_envelope

        fleet = FleetSpec([DeviceSlot("home", "ring_8")])
        cache = ResultCache()
        scheduler = Scheduler(
            fleet, "greedy", cache=cache, execute_fn=_FakeExecute(),
        )
        job = _fleet_job(0)
        scheduler.run([job])
        engine = scheduler._states["home"].engine
        bound = bind_job(job, fleet.target("home"))
        result = engine.run([bound]).results[0]
        assert result.cached
        metrics, _ = decode_envelope(result.payload)
        assert metrics["placement"]["device_label"] == "home"
        assert metrics["placement"]["policy"] == "greedy"
        assert result.to_record()["placement"]["device_label"] == "home"
        assert result.device_label == "home"


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------
class TestStreams:
    def test_synthetic_stream_deterministic_and_mixed(self):
        a = synthetic_stream(30, seed=9)
        b = synthetic_stream(30, seed=9)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        kinds = {j.kind for j in a}
        assert kinds == {"compile", "eval"}
        # Gold demotion: the ARG bar requires an eval to be measurable.
        for job in a:
            if job.slo.max_arg is not None:
                assert job.kind == "eval"

    def test_synthetic_stream_custom_tier_weights(self):
        stream = synthetic_stream(
            10, seed=1, tier_weights=[("bronze", 1.0)],
        )
        assert all(j.slo == SLO_TIERS["bronze"] for j in stream)
        with pytest.raises(ValueError, match="unknown SLO tier"):
            synthetic_stream(3, tier_weights=[("iron", 1.0)])

    def test_fleet_jobs_from_jsonl(self):
        lines = [
            "# comment",
            "",
            json.dumps({
                "problem": {"family": "er", "nodes": 6, "param": 0.5,
                            "seed": 1},
                "method": "ic",
                "slo": "bronze",
                "id": "one",
            }),
            json.dumps({
                "problem": {"family": "er", "nodes": 6, "param": 0.5,
                            "seed": 2},
                "method": "ip",
                "slo": {"max_latency_ms": 123.0},
                "eval": {"shots": 64, "trajectories": 2},
                "id": "two",
            }),
        ]
        jobs = fleet_jobs_from_jsonl(lines)
        assert [j.job_id for j in jobs] == ["one", "two"]
        assert jobs[0].kind == "compile"
        assert jobs[0].slo == SLO_TIERS["bronze"]
        assert jobs[1].kind == "eval"
        assert jobs[1].job.shots == 64
        assert jobs[1].slo.max_latency_ms == 123.0

    def test_fleet_jobs_from_jsonl_bad_line(self):
        with pytest.raises(ValueError, match="line 1"):
            fleet_jobs_from_jsonl([json.dumps({"slo": "no-such-tier"})])


# ----------------------------------------------------------------------
# optimize jobs through the fleet (the variational service workload)
# ----------------------------------------------------------------------
class TestOptimizeFleet:
    MIS_RING5 = [
        [1, -1, 0, 0, -1],
        [-1, 1, -1, 0, 0],
        [0, -1, 1, -1, 0],
        [0, 0, -1, 1, -1],
        [-1, 0, 0, -1, 1],
    ]

    def _optimize_line(self, **knobs):
        return json.dumps({
            "id": "mis",
            "qubo": {"matrix": self.MIS_RING5},
            "slo": "bronze",
            "optimize": {"maxiter": 40, "restarts": 2, "seed": 3, **knobs},
        })

    def test_jsonl_optimize_line_builds_optimize_kind(self):
        [job] = fleet_jobs_from_jsonl([self._optimize_line()])
        assert job.kind == "optimize"
        assert isinstance(job.job, OptimizeJob)
        assert job.slo == SLO_TIERS["bronze"]
        assert job.method == "cobyla"  # latency model keys on optimizer
        assert job.program is None
        assert job.levels == 1
        assert job.num_edges == len(job.job.problem.edges)

    def test_bind_is_identity_for_device_free_jobs(self):
        [fleet_job] = fleet_jobs_from_jsonl([self._optimize_line()])
        target = FleetSpec([DeviceSlot("d", "ring_8")]).target("d")
        bound = bind_job(fleet_job, target)
        assert bound is fleet_job.job
        assert bound.content_hash() == fleet_job.job.content_hash()

    def test_admission_applies_memory_filter(self):
        fleet = FleetSpec([DeviceSlot("big", "grid_6x6")])
        scheduler = Scheduler(fleet, "greedy", execute_fn=_FakeExecute())
        [job] = fleet_jobs_from_jsonl([self._optimize_line()])
        candidate, rejection = scheduler.admit(job)
        assert rejection is not None
        assert rejection.kind == "no_eligible_device"
        assert "statevector-simulable" in rejection.detail
        assert "optimize" in rejection.detail

    def test_scheduler_runs_optimize_job_end_to_end(self):
        fleet = FleetSpec([DeviceSlot("sim", "ring_8")])
        scheduler = Scheduler(fleet, "least-loaded")
        [job] = fleet_jobs_from_jsonl([self._optimize_line()])
        report = scheduler.run([job])
        assert report.placed == 1 and not report.rejections
        [record] = report.records
        assert record.ok
        assert record.kind == "optimize"
        assert record.device_label == "sim"
        assert record.exec_ms > 0.0

    def test_latency_model_has_optimize_prior(self):
        model = EwmaLatencyModel()
        assert model.predict_ms("optimize") == 400.0
        assert model.predict_ms("optimize") > model.predict_ms("eval")


# ----------------------------------------------------------------------
# fidelity estimates on repaired (fault-injected) targets
# ----------------------------------------------------------------------
class TestEstimateOnRepairedTargets:
    """`estimate_success_probability` must keep working on targets whose
    calibration went through fault injection and `repair_calibration` —
    dead couplers pruned out of the coupling, inflated error rates."""

    def _targets(self):
        clean = FleetSpec(
            [DeviceSlot("clean", "ibmq_16_melbourne")]
        ).target("clean")
        hurt = FleetSpec(
            [
                DeviceSlot(
                    "hurt", "ibmq_16_melbourne",
                    faults={"dead_edges": 2, "inflate": 3.0},
                    fault_seed=11,
                ),
            ]
        ).target("hurt")
        return clean, hurt

    def test_pruned_couplers_leave_the_graph(self):
        clean, hurt = self._targets()
        assert hurt.warnings  # repair provenance attached
        assert len(hurt.coupling.edges) == len(clean.coupling.edges) - 2

    def test_estimate_survives_pruning_and_ranks_damage_lower(self):
        from repro.fleet import estimate_success_probability

        clean, hurt = self._targets()
        est_clean = estimate_success_probability(10, 1, clean)
        est_hurt = estimate_success_probability(10, 1, hurt)
        assert est_clean is not None and 0.0 < est_clean < 1.0
        assert est_hurt is not None and 0.0 <= est_hurt < 1.0
        # inflated error rates must push the promise down
        assert est_hurt < est_clean

    def test_estimate_monotone_in_workload(self):
        from repro.fleet import estimate_success_probability

        _, hurt = self._targets()
        small = estimate_success_probability(5, 1, hurt)
        large = estimate_success_probability(20, 2, hurt)
        assert large <= small

    def test_uncalibrated_target_gives_no_promise(self):
        from repro.fleet import estimate_success_probability

        bare = FleetSpec(
            [DeviceSlot("bare", "ring_8", calibration=None)]
        ).target("bare")
        assert estimate_success_probability(5, 1, bare) is None
