"""Unit tests for the peephole optimiser."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.circuits.optimize import (
    cancel_adjacent_self_inverse,
    merge_phase_gates,
    peephole_optimize,
)

from ..conftest import assert_equal_up_to_global_phase, circuit_unitary


class TestCnotCancellation:
    def test_adjacent_pair_cancels(self):
        qc = QuantumCircuit(2).cnot(0, 1).cnot(0, 1)
        out = cancel_adjacent_self_inverse(qc)
        assert len(out) == 0

    def test_reversed_cnot_does_not_cancel(self):
        qc = QuantumCircuit(2).cnot(0, 1).cnot(1, 0)
        out = cancel_adjacent_self_inverse(qc)
        assert len(out) == 2

    def test_symmetric_gates_cancel_either_order(self):
        qc = QuantumCircuit(2).cz(0, 1).cz(1, 0)
        assert len(cancel_adjacent_self_inverse(qc)) == 0
        qc = QuantumCircuit(2).swap(0, 1).swap(1, 0)
        assert len(cancel_adjacent_self_inverse(qc)) == 0

    def test_intervening_gate_blocks_cancellation(self):
        qc = QuantumCircuit(2).cnot(0, 1).h(1).cnot(0, 1)
        out = cancel_adjacent_self_inverse(qc)
        assert out.count_ops()["cnot"] == 2

    def test_intervening_gate_on_other_qubit_blocks(self):
        # u1 on the control between the CNOTs: not adjacent.
        qc = QuantumCircuit(2).cnot(0, 1).u1(0.3, 0).cnot(0, 1)
        out = cancel_adjacent_self_inverse(qc)
        assert out.count_ops()["cnot"] == 2

    def test_spectator_gate_does_not_block(self):
        qc = QuantumCircuit(3).cnot(0, 1).h(2).cnot(0, 1)
        out = cancel_adjacent_self_inverse(qc)
        assert "cnot" not in out.count_ops()
        assert out.count_ops()["h"] == 1

    def test_cphase_swap_seam_cancels(self):
        """The systematic win: cphase followed by swap on the same pair
        lowers to 5 CNOTs with an adjacent equal pair inside."""
        qc = decompose_to_basis(
            QuantumCircuit(2).cphase(0.7, 0, 1).swap(0, 1)
        )
        out = peephole_optimize(qc)
        assert out.count_ops()["cnot"] < qc.count_ops()["cnot"]
        assert_equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(out)
        )


class TestPhaseMerging:
    def test_consecutive_u1_merge(self):
        qc = QuantumCircuit(1).u1(0.3, 0).u1(0.4, 0)
        out = merge_phase_gates(qc)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_u1_rz_merge_keeps_first_name(self):
        qc = QuantumCircuit(1).rz(0.3, 0).u1(0.2, 0)
        out = merge_phase_gates(qc)
        assert len(out) == 1
        assert out[0].name == "rz"
        assert out[0].params[0] == pytest.approx(0.5)

    def test_cancelling_angles_vanish(self):
        qc = QuantumCircuit(1).u1(0.5, 0).u1(-0.5, 0)
        assert len(merge_phase_gates(qc)) == 0

    def test_zero_rotations_dropped(self):
        qc = QuantumCircuit(1).rx(0.0, 0).u1(0.0, 0).ry(0.0, 0)
        assert len(merge_phase_gates(qc)) == 0

    def test_two_pi_u1_dropped(self):
        qc = QuantumCircuit(1).u1(2 * np.pi, 0)
        assert len(merge_phase_gates(qc)) == 0

    def test_nonzero_rotation_kept(self):
        qc = QuantumCircuit(1).rx(0.2, 0)
        assert len(merge_phase_gates(qc)) == 1

    def test_gate_between_blocks_merge(self):
        qc = QuantumCircuit(1).u1(0.3, 0).h(0).u1(0.4, 0)
        out = merge_phase_gates(qc)
        assert out.count_ops()["u1"] == 2


class TestPeepholeOptimize:
    def test_equivalence_on_random_circuits(self, rng):
        for seed in range(8):
            local = np.random.default_rng(seed)
            qc = QuantumCircuit(3)
            for _ in range(15):
                kind = local.integers(4)
                if kind == 0:
                    qc.cnot(*map(int, local.choice(3, size=2, replace=False)))
                elif kind == 1:
                    qc.u1(float(local.normal()), int(local.integers(3)))
                elif kind == 2:
                    qc.h(int(local.integers(3)))
                else:
                    qc.cphase(
                        float(local.normal()),
                        *map(int, local.choice(3, size=2, replace=False)),
                    )
            native = decompose_to_basis(qc)
            out = peephole_optimize(native)
            assert len(out) <= len(native)
            assert_equal_up_to_global_phase(
                circuit_unitary(native), circuit_unitary(out), atol=1e-8
            )

    def test_fixed_point(self):
        qc = decompose_to_basis(
            QuantumCircuit(3).cphase(0.4, 0, 1).cphase(0.3, 0, 1).swap(1, 2)
        )
        once = peephole_optimize(qc)
        twice = peephole_optimize(once)
        assert once.instructions == twice.instructions

    def test_repeated_cphase_pair_shrinks(self):
        """Two consecutive CPHASEs on the same pair share a cancelling CNOT
        pair after lowering — the optimiser must find it."""
        qc = decompose_to_basis(
            QuantumCircuit(2).cphase(0.4, 0, 1).cphase(0.3, 0, 1)
        )
        out = peephole_optimize(qc)
        assert out.count_ops()["cnot"] == 2  # down from 4

    def test_measurements_preserved(self):
        qc = QuantumCircuit(2).cnot(0, 1).cnot(0, 1).measure_all()
        out = peephole_optimize(qc)
        assert out.count_ops() == {"measure": 2}

    def test_compiled_circuit_improves_or_stays(self, rng):
        from repro.compiler import compile_with_method
        from repro.hardware import linear_device
        from repro.qaoa import MaxCutProblem

        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, linear_device(5), "naive", rng=rng
        )
        native = compiled.native()
        optimized = peephole_optimize(native)
        assert optimized.gate_count() <= native.gate_count()
        assert optimized.depth() <= native.depth()
