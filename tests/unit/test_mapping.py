"""Unit tests for the logical-to-physical Mapping."""

import numpy as np
import pytest

from repro.compiler.mapping import Mapping


class TestConstruction:
    def test_trivial(self):
        m = Mapping.trivial(3, 5)
        assert m.as_dict() == {0: 0, 1: 1, 2: 2}
        assert m.free_physical() == (3, 4)

    def test_trivial_too_many_logical(self):
        with pytest.raises(ValueError, match="cannot fit"):
            Mapping.trivial(6, 5)

    def test_random_is_injective(self):
        rng = np.random.default_rng(0)
        m = Mapping.random(5, 8, rng)
        placements = list(m.as_dict().values())
        assert len(set(placements)) == 5
        assert all(0 <= p < 8 for p in placements)

    def test_random_reproducible(self):
        a = Mapping.random(4, 6, np.random.default_rng(42))
        b = Mapping.random(4, 6, np.random.default_rng(42))
        assert a == b


class TestPlacement:
    def test_place_and_lookup(self):
        m = Mapping({}, 4)
        m.place(0, 3)
        assert m.physical(0) == 3
        assert m.logical_at(3) == 0
        assert m.logical_at(0) is None

    def test_double_place_logical_rejected(self):
        m = Mapping({0: 1}, 4)
        with pytest.raises(ValueError, match="already placed"):
            m.place(0, 2)

    def test_occupied_physical_rejected(self):
        m = Mapping({0: 1}, 4)
        with pytest.raises(ValueError, match="occupied"):
            m.place(1, 1)

    def test_out_of_range_rejected(self):
        m = Mapping({}, 2)
        with pytest.raises(ValueError, match="out of range"):
            m.place(0, 5)

    def test_unplaced_lookup_raises(self):
        m = Mapping({}, 2)
        with pytest.raises(KeyError, match="not placed"):
            m.physical(0)

    def test_is_placed(self):
        m = Mapping({1: 0}, 2)
        assert m.is_placed(1)
        assert not m.is_placed(0)


class TestSwap:
    def test_swap_two_occupied(self):
        m = Mapping({0: 0, 1: 1}, 3)
        m.apply_swap(0, 1)
        assert m.physical(0) == 1
        assert m.physical(1) == 0

    def test_swap_with_empty(self):
        m = Mapping({0: 0}, 3)
        m.apply_swap(0, 2)
        assert m.physical(0) == 2
        assert m.logical_at(0) is None

    def test_swap_two_empty_is_noop(self):
        m = Mapping({0: 0}, 3)
        m.apply_swap(1, 2)
        assert m.as_dict() == {0: 0}

    def test_swap_out_of_range(self):
        m = Mapping({}, 2)
        with pytest.raises(ValueError, match="out of range"):
            m.apply_swap(0, 5)

    def test_swap_sequence_is_permutation(self):
        rng = np.random.default_rng(1)
        m = Mapping.trivial(4, 6)
        for _ in range(50):
            a, b = rng.choice(6, size=2, replace=False)
            m.apply_swap(int(a), int(b))
        values = list(m.as_dict().values())
        assert len(set(values)) == 4  # still injective


class TestQueries:
    def test_occupied_and_free(self):
        m = Mapping({0: 2, 1: 5}, 6)
        assert m.occupied_physical() == (2, 5)
        assert m.free_physical() == (0, 1, 3, 4)

    def test_logical_qubits(self):
        m = Mapping({3: 0, 1: 2}, 4)
        assert m.logical_qubits() == (1, 3)

    def test_physical_pair(self):
        m = Mapping({0: 4, 1: 2}, 5)
        assert m.physical_pair(0, 1) == (4, 2)

    def test_copy_independent(self):
        m = Mapping({0: 0}, 3)
        dup = m.copy()
        dup.apply_swap(0, 1)
        assert m.physical(0) == 0
        assert dup.physical(0) == 1

    def test_len_and_repr(self):
        m = Mapping({0: 1, 1: 2}, 4)
        assert len(m) == 2
        assert "q0->p1" in repr(m)

    def test_equality(self):
        assert Mapping({0: 1}, 3) == Mapping({0: 1}, 3)
        assert Mapping({0: 1}, 3) != Mapping({0: 2}, 3)
        assert Mapping({0: 1}, 3) != Mapping({0: 1}, 4)
