"""Unit tests for Incremental Compilation — including a Figure 5-style run."""

import numpy as np

from repro.circuits import QuantumCircuit
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.mapping import Mapping
from repro.hardware import ibmq_20_tokyo, linear_device, ring_device

# Figure 5 starts from the Figure 3(e) mapping on tokyo.
FIG5_MAPPING = {0: 7, 1: 12, 2: 13, 3: 2, 4: 8}
FIG5_GATES = [
    (0, 1, 0.5), (0, 2, 0.5), (0, 3, 0.5), (0, 4, 0.5),
    (1, 2, 0.5), (1, 4, 0.5), (3, 4, 0.5),
]


def _compile_block(compiler, gates, mapping_dict, num_physical):
    mapping = Mapping(mapping_dict, num_physical)
    out = QuantumCircuit(num_physical)
    result = compiler.compile_block(gates, mapping, out)
    return result, out, mapping


class TestFigure5Walkthrough:
    def test_all_cphases_compiled(self):
        compiler = IncrementalCompiler(ibmq_20_tokyo())
        result, out, _ = _compile_block(
            compiler, FIG5_GATES, FIG5_MAPPING, 20
        )
        assert out.count_ops().get("cphase", 0) == len(FIG5_GATES)

    def test_coupling_compliance(self):
        g = ibmq_20_tokyo()
        compiler = IncrementalCompiler(g)
        _, out, _ = _compile_block(compiler, FIG5_GATES, FIG5_MAPPING, 20)
        for inst in out:
            if inst.is_two_qubit:
                assert g.has_edge(*inst.qubits)

    def test_four_layers_and_two_swaps_as_in_figure5(self):
        """Figure 5's outcome: "4 layers are formed and 2 SWAP operations
        are added".  Our deterministic tie-breaking reproduces both numbers
        exactly (the specific layer contents differ because the paper
        breaks distance ties randomly)."""
        compiler = IncrementalCompiler(ibmq_20_tokyo())
        result, _, _ = _compile_block(compiler, FIG5_GATES, FIG5_MAPPING, 20)
        assert result.num_layers == 4
        assert result.swap_count == 2

    def test_first_chosen_gate_is_at_distance_one(self):
        """Layer formation sorts by current physical distance ascending, so
        the first gate of layer 1 must be one of the distance-1 pairs."""
        g = ibmq_20_tokyo()
        compiler = IncrementalCompiler(g)
        result, _, _ = _compile_block(compiler, FIG5_GATES, FIG5_MAPPING, 20)
        mapping = Mapping(FIG5_MAPPING, 20)
        a, b = result.layers[0][0]
        assert g.distance(mapping.physical(a), mapping.physical(b)) == 1


class TestBlockCompilation:
    def test_mapping_mutated_to_final(self):
        compiler = IncrementalCompiler(linear_device(4))
        mapping = Mapping.trivial(4, 4)
        out = QuantumCircuit(4)
        compiler.compile_block([(0, 3, 0.4)], mapping, out)
        # Routing must have moved someone.
        assert mapping.as_dict() != {0: 0, 1: 1, 2: 2, 3: 3}

    def test_dynamic_resorting_uses_updated_distances(self):
        """After routing brings qubits together, the next layer prefers the
        now-close pair: on a line 0-1-2-3-4 with gates (0,4) then (0,3),
        compiling (0,4) drags q0 and q4 to the middle, leaving (0,3)
        adjacent, so the whole block needs no extra SWAPs."""
        g = linear_device(5)
        compiler = IncrementalCompiler(g)
        mapping = Mapping.trivial(5, 5)
        out = QuantumCircuit(5)
        result = compiler.compile_block(
            [(0, 4, 0.3), (0, 3, 0.3)], mapping, out
        )
        # (0,4) at distance 4 costs 3 swaps; a naive second routing of
        # (0,3) from the *initial* mapping would cost 2 more.  Dynamic IC
        # should do much better than 5.
        assert result.swap_count <= 4

    def test_duplicate_gates_handled(self):
        compiler = IncrementalCompiler(linear_device(3))
        mapping = Mapping.trivial(3, 3)
        out = QuantumCircuit(3)
        result = compiler.compile_block(
            [(0, 1, 0.2), (0, 1, 0.7)], mapping, out
        )
        assert out.count_ops()["cphase"] == 2
        assert result.num_layers == 2

    def test_gate_angles_preserved(self):
        compiler = IncrementalCompiler(linear_device(3))
        mapping = Mapping.trivial(3, 3)
        out = QuantumCircuit(3)
        compiler.compile_block([(0, 1, 0.777)], mapping, out)
        cphases = [i for i in out if i.name == "cphase"]
        assert cphases[0].params == (0.777,)

    def test_empty_block(self):
        compiler = IncrementalCompiler(linear_device(3))
        mapping = Mapping.trivial(3, 3)
        out = QuantumCircuit(3)
        result = compiler.compile_block([], mapping, out)
        assert result.num_layers == 0
        assert len(out) == 0

    def test_packing_limit_respected(self):
        compiler = IncrementalCompiler(ring_device(8), packing_limit=1)
        mapping = Mapping.trivial(8, 8)
        out = QuantumCircuit(8)
        result = compiler.compile_block(
            [(0, 1, 0.1), (2, 3, 0.1), (4, 5, 0.1)], mapping, out
        )
        assert result.num_layers == 3
        assert all(len(layer) == 1 for layer in result.layers)

    def test_rng_reproducibility(self):
        g = ring_device(8)
        gates = [(0, 4, 0.1), (1, 5, 0.1), (2, 6, 0.1), (3, 7, 0.1)]

        def run(seed):
            compiler = IncrementalCompiler(g, rng=np.random.default_rng(seed))
            mapping = Mapping.trivial(8, 8)
            out = QuantumCircuit(8)
            compiler.compile_block(gates, mapping, out)
            return out.instructions

        assert run(3) == run(3)

    def test_default_distance_matrix_is_hops(self):
        g = linear_device(4)
        compiler = IncrementalCompiler(g)
        assert compiler.distance_matrix[0, 3] == 3.0
