"""Unit tests for the analytic p=1 MaxCut expectation.

The closed form is validated against the statevector simulator — an
end-to-end consistency check of gate conventions, the circuit builder and
the analytic formula simultaneously.
"""

import math

import numpy as np
import pytest

from repro.qaoa.analytic import (
    analytic_edge_expectation,
    analytic_expectation,
    analytic_optimal_parameters,
)
from repro.qaoa.optimizer import qaoa_expectation
from repro.qaoa.problems import MaxCutProblem


def _random_problem(rng, n=6, p=0.5):
    import networkx as nx

    while True:
        g = nx.erdos_renyi_graph(n, p, seed=int(rng.integers(1 << 30)))
        if g.number_of_edges() > 0:
            return MaxCutProblem.from_graph(g)


class TestAgainstSimulator:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_random_angles(self, seed):
        rng = np.random.default_rng(seed)
        problem = _random_problem(rng)
        gamma = float(rng.uniform(-math.pi, math.pi))
        beta = float(rng.uniform(-math.pi / 2, math.pi / 2))
        analytic = analytic_expectation(problem, gamma, beta)
        simulated = qaoa_expectation(problem, [gamma], [beta])
        assert analytic == pytest.approx(simulated, abs=1e-9)

    def test_triangle(self):
        problem = MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])
        assert analytic_expectation(problem, 0.8, 0.4) == pytest.approx(
            qaoa_expectation(problem, [0.8], [0.4]), abs=1e-9
        )

    def test_star_graph(self):
        problem = MaxCutProblem(5, [(0, i) for i in range(1, 5)])
        assert analytic_expectation(problem, -1.1, 0.25) == pytest.approx(
            qaoa_expectation(problem, [-1.1], [0.25]), abs=1e-9
        )


class TestAnalyticProperties:
    def test_zero_angles_give_half_the_edges(self):
        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3)])
        assert analytic_expectation(problem, 0.0, 0.0) == pytest.approx(1.5)

    def test_single_edge_is_exactly_solvable(self):
        """A single edge reaches cut value 1 at p=1 (ratio 1.0)."""
        problem = MaxCutProblem(2, [(0, 1)])
        gamma, beta, value = analytic_optimal_parameters(problem)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_edge_expectation_sums_to_total(self):
        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        total = sum(
            analytic_edge_expectation(problem, i, 0.7, 0.3)
            for i in range(4)
        )
        assert total == pytest.approx(analytic_expectation(problem, 0.7, 0.3))

    def test_weighted_problem_rejected(self):
        problem = MaxCutProblem(2, [(0, 1, 2.0)])
        with pytest.raises(ValueError, match="unit edge weights"):
            analytic_expectation(problem, 0.1, 0.1)

    def test_expectation_bounded_by_edge_count(self):
        problem = MaxCutProblem(5, [(i, (i + 1) % 5) for i in range(5)])
        rng = np.random.default_rng(3)
        for _ in range(20):
            g = float(rng.uniform(-math.pi, math.pi))
            b = float(rng.uniform(-math.pi, math.pi))
            value = analytic_expectation(problem, g, b)
            assert -0.01 <= value <= 5.01


class TestOptimalParameters:
    def test_polish_never_worse_than_grid(self):
        problem = MaxCutProblem(5, [(i, (i + 1) % 5) for i in range(5)])
        _, _, coarse = analytic_optimal_parameters(problem, grid=8, polish=False)
        _, _, polished = analytic_optimal_parameters(problem, grid=8, polish=True)
        assert polished >= coarse - 1e-12

    def test_ring_p1_ratio_near_three_quarters(self):
        """For large rings (2-regular), p=1 QAOA achieves ratio ~0.756
        (cos^2 bound); on C8 the optimum sits in that neighbourhood."""
        problem = MaxCutProblem(8, [(i, (i + 1) % 8) for i in range(8)])
        _, _, value = analytic_optimal_parameters(problem)
        ratio = value / problem.max_cut_value()
        assert 0.7 <= ratio <= 0.8

    def test_optimum_is_stationary(self):
        problem = MaxCutProblem(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        gamma, beta, value = analytic_optimal_parameters(problem)
        eps = 1e-4
        for dg, db in [(eps, 0), (-eps, 0), (0, eps), (0, -eps)]:
            assert analytic_expectation(problem, gamma + dg, beta + db) <= value + 1e-6
