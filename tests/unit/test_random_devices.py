"""Unit tests for random device generators."""

import numpy as np
import pytest

from repro.hardware.random import (
    random_connected_device,
    random_degree_bounded_device,
)


class TestRandomConnected:
    def test_always_connected(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            device = random_connected_device(
                int(rng.integers(2, 15)), int(rng.integers(0, 10)), rng
            )
            assert device.is_connected()

    def test_tree_when_no_extra_edges(self):
        device = random_connected_device(8, 0, np.random.default_rng(1))
        assert device.num_edges() == 7

    def test_extra_edges_added(self):
        device = random_connected_device(8, 5, np.random.default_rng(2))
        assert device.num_edges() == 12

    def test_capped_at_complete_graph(self):
        device = random_connected_device(4, 100, np.random.default_rng(3))
        assert device.num_edges() == 6

    def test_reproducible(self):
        a = random_connected_device(10, 4, np.random.default_rng(4))
        b = random_connected_device(10, 4, np.random.default_rng(4))
        assert a.edges == b.edges

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            random_connected_device(1)
        with pytest.raises(ValueError, match="extra_edges"):
            random_connected_device(4, -1)

    def test_name_default(self):
        device = random_connected_device(5, 1, np.random.default_rng(5))
        assert device.name.startswith("random_5q")


class TestDegreeBounded:
    def test_degree_bound_respected(self):
        rng = np.random.default_rng(6)
        for _ in range(15):
            device = random_degree_bounded_device(
                int(rng.integers(3, 20)), max_degree=3, rng=rng
            )
            assert device.is_connected()
            assert all(
                device.degree(q) <= 3 for q in range(device.num_qubits)
            )

    def test_degree_two_gives_path_like(self):
        device = random_degree_bounded_device(
            6, max_degree=2, rng=np.random.default_rng(7)
        )
        assert device.is_connected()
        assert max(device.degree(q) for q in range(6)) <= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_degree"):
            random_degree_bounded_device(4, max_degree=1)

    def test_compiles_qaoa(self):
        """Random topologies must work end to end."""
        from repro.compiler import compile_with_method
        from repro.qaoa import MaxCutProblem

        device = random_degree_bounded_device(
            10, max_degree=3, rng=np.random.default_rng(8)
        )
        problem = MaxCutProblem(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
        )
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, device, "ic", rng=np.random.default_rng(9)
        )
        compiled.validate()
