"""Unit tests for the experiment harness."""

import pytest

from repro.experiments.harness import (
    RunRecord,
    compile_record,
    make_problem,
    mean_by,
    ratio_table,
    run_sweep,
    scaled_instances,
)
from repro.hardware import ring_device, uniform_calibration


class TestScaledInstances:
    def test_default_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert scaled_instances(5, 50) == 5

    def test_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scaled_instances(5, 50) == 50

    def test_falsey_env_values(self, monkeypatch):
        for value in ("", "0", "false"):
            monkeypatch.setenv("REPRO_FULL", value)
            assert scaled_instances(5, 50) == 5


class TestMakeProblem:
    def test_er(self, rng):
        p = make_problem("er", 10, 0.5, rng)
        assert p.num_nodes == 10

    def test_regular(self, rng):
        p = make_problem("regular", 10, 3, rng)
        assert all(p.degree(q) == 3 for q in range(10))

    def test_er_m(self, rng):
        p = make_problem("er_m", 8, 8, rng)
        assert len(p.edges) == 8

    def test_unknown_family(self, rng):
        with pytest.raises(ValueError, match="unknown workload"):
            make_problem("scale_free", 10, 2, rng)


class TestCompileRecord:
    def test_fields(self, rng):
        problem = make_problem("regular", 6, 3, rng)
        record = compile_record(
            problem,
            ring_device(8),
            "qaim",
            rng,
            family="regular",
            param=3,
            instance=7,
        )
        assert record.method == "qaim"
        assert record.family == "regular"
        assert record.instance == 7
        assert record.depth > 0
        assert record.gate_count >= record.cnot_count
        assert record.success_probability is None

    def test_success_probability_with_calibration(self, rng):
        problem = make_problem("regular", 6, 3, rng)
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        record = compile_record(
            problem, ring_device(8), "ic", rng, calibration=cal
        )
        assert 0.0 < record.success_probability < 1.0


class TestRunSweep:
    def test_record_count(self):
        records = run_sweep(
            ring_device(8),
            methods=("naive", "qaim"),
            family="er",
            num_nodes=6,
            params=(0.3, 0.5),
            instances=2,
            seed=1,
        )
        assert len(records) == 2 * 2 * 2  # methods x params x instances

    def test_paired_instances_across_methods(self):
        records = run_sweep(
            ring_device(8),
            methods=("naive", "qaim"),
            family="regular",
            num_nodes=6,
            params=(3,),
            instances=3,
            seed=2,
        )
        # Both methods saw the same problems: cphase count (edges) matches
        # per instance index.
        by_key = {}
        for r in records:
            by_key.setdefault(r.instance, set()).add(r.method)
        assert all(v == {"naive", "qaim"} for v in by_key.values())

    def test_seed_reproducibility(self):
        kwargs = dict(
            coupling=ring_device(8),
            methods=("qaim",),
            family="er",
            num_nodes=6,
            params=(0.4,),
            instances=2,
            seed=3,
        )
        a = run_sweep(**kwargs)
        b = run_sweep(**kwargs)
        assert [(r.depth, r.gate_count) for r in a] == [
            (r.depth, r.gate_count) for r in b
        ]


class TestAggregation:
    def _records(self):
        return [
            RunRecord("er", 0.5, 6, 0, "naive", 10, 20, 8, 2, 0.1),
            RunRecord("er", 0.5, 6, 1, "naive", 20, 40, 16, 4, 0.3),
            RunRecord("er", 0.5, 6, 0, "qaim", 5, 10, 4, 1, 0.1),
            RunRecord("er", 0.5, 6, 1, "qaim", 10, 20, 8, 2, 0.1),
        ]

    def test_mean_by(self):
        means = mean_by(self._records(), "depth")
        assert means[("er", 0.5, "naive")] == pytest.approx(15.0)
        assert means[("er", 0.5, "qaim")] == pytest.approx(7.5)

    def test_mean_by_skips_none(self):
        records = self._records()
        records[0].success_probability = 0.5
        means = mean_by(records, "success_probability", keys=("method",))
        assert means == {("naive",): 0.5}

    def test_mean_by_empty_raises(self):
        with pytest.raises(ValueError, match="no values"):
            mean_by(self._records(), "success_probability")

    def test_ratio_table(self):
        ratios = ratio_table(self._records(), "depth", "naive")
        assert ratios[("er", 0.5)]["qaim"] == pytest.approx(0.5)
        assert ratios[("er", 0.5)]["naive"] == pytest.approx(1.0)

    def test_ratio_table_missing_baseline(self):
        records = [r for r in self._records() if r.method != "naive"]
        with pytest.raises(ValueError, match="baseline"):
            ratio_table(records, "depth", "naive")
