"""Unit tests for the exact density-matrix simulator — and the key
cross-validation: Monte-Carlo trajectories converge to its output."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.hardware import linear_device, uniform_calibration
from repro.sim import StatevectorSimulator
from repro.sim.density import DensityMatrixSimulator
from repro.sim.noise import NoiseModel, NoisySimulator


def _bell():
    return QuantumCircuit(2).h(0).cnot(0, 1)


class TestNoiselessAgreement:
    def test_matches_statevector(self):
        noise = NoiseModel.ideal(3)
        dm = DensityMatrixSimulator(noise)
        sv = StatevectorSimulator()
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cphase(0.7, 1, 2).rx(0.3, 0)
        np.testing.assert_allclose(
            dm.probabilities(qc), sv.probabilities(qc), atol=1e-12
        )

    def test_pure_state_density(self):
        dm = DensityMatrixSimulator(NoiseModel.ideal(2))
        rho = dm.run(_bell())
        # Pure state: rho^2 == rho and trace 1.
        np.testing.assert_allclose(rho @ rho, rho, atol=1e-12)
        assert np.trace(rho).real == pytest.approx(1.0)


class TestChannels:
    def test_depolarizing_reduces_purity(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.2)
        dm = DensityMatrixSimulator(NoiseModel.from_calibration(cal))
        rho = dm.run(_bell())
        purity = np.trace(rho @ rho).real
        assert purity < 1.0
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_full_depolarization_is_maximally_mixed(self):
        model = NoiseModel(
            two_qubit_depol={(0, 1): 15.0 / 16.0},  # uniform over all 16
            single_qubit_depol={},
            readout_flip={},
        )
        # p = 15/16 with uniform Paulis gives the fully depolarizing channel
        # on the two qubits.
        dm = DensityMatrixSimulator(model)
        probs = dm.probabilities(_bell())
        np.testing.assert_allclose(probs, np.full(4, 0.25), atol=1e-12)

    def test_single_qubit_channel(self):
        model = NoiseModel(
            two_qubit_depol={},
            single_qubit_depol={0: 0.3},
            readout_flip={},
        )
        dm = DensityMatrixSimulator(model)
        qc = QuantumCircuit(1).x(0)
        probs = dm.probabilities(qc)
        # After X and depolarizing(0.3): P(0) = p * 2/3 / ... compute:
        # channel leaves |1><1| with prob 1-p + p/3 (Z) ; X,Y flip it.
        expected_p0 = 0.3 * 2.0 / 3.0
        assert probs[0] == pytest.approx(expected_p0)
        assert probs[1] == pytest.approx(1.0 - expected_p0)

    def test_readout_confusion(self):
        model = NoiseModel(
            two_qubit_depol={}, single_qubit_depol={}, readout_flip={0: 0.1}
        )
        dm = DensityMatrixSimulator(model)
        probs = dm.probabilities(QuantumCircuit(1).x(0))
        assert probs[0] == pytest.approx(0.1)
        assert probs[1] == pytest.approx(0.9)

    def test_t2_rejected(self):
        model = NoiseModel(
            two_qubit_depol={}, single_qubit_depol={}, readout_flip={},
            t2_ns=1000.0,
        )
        with pytest.raises(ValueError, match="T2"):
            DensityMatrixSimulator(model)

    def test_size_guard(self):
        dm = DensityMatrixSimulator(NoiseModel.ideal(12), max_qubits=4)
        with pytest.raises(ValueError, match="exceeds"):
            dm.run(QuantumCircuit(5).h(0))


class TestTrajectoryConvergence:
    """The load-bearing cross-check: the Monte-Carlo sampler and the exact
    channel evolution agree."""

    def test_ghz_distribution_converges(self):
        cal = uniform_calibration(
            linear_device(3), cnot_error=0.1, readout_error=0.05
        )
        model = NoiseModel.from_calibration(cal)
        dm = DensityMatrixSimulator(model)
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).measure_all()

        exact = dm.probabilities(qc)
        noisy = NoisySimulator(model, trajectories=600)
        counts = noisy.sample_counts(qc, 60000, np.random.default_rng(0))
        sampled = np.zeros(8)
        for bits, c in counts.items():
            sampled[int(bits, 2)] = c / 60000.0
        np.testing.assert_allclose(sampled, exact, atol=0.02)

    def test_compiled_qaoa_distribution_converges(self):
        from repro.compiler import compile_with_method
        from repro.qaoa import MaxCutProblem

        device = linear_device(4)
        cal = uniform_calibration(device, cnot_error=0.08)
        model = NoiseModel.from_calibration(cal)
        problem = MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])
        program = problem.to_program([0.6], [0.3])
        compiled = compile_with_method(
            program, device, "ic", rng=np.random.default_rng(1)
        )
        dm = DensityMatrixSimulator(model)
        exact = dm.probabilities(compiled.circuit)
        noisy = NoisySimulator(model, trajectories=800)
        counts = noisy.sample_counts(
            compiled.circuit, 80000, np.random.default_rng(2)
        )
        sampled = np.zeros(len(exact))
        for bits, c in counts.items():
            sampled[int(bits, 2)] = c / 80000.0
        np.testing.assert_allclose(sampled, exact, atol=0.02)
