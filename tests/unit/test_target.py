"""Unit tests for the Target layer: memoized oracles, fingerprints,
interning, and the compile entry-point integration."""

import pickle

import numpy as np
import pytest

from repro.compiler.flow import compile_qaoa, compile_with_method
from repro.compiler.serialize import from_json, to_json
from repro.hardware.devices import (
    figure6_calibration,
    figure6_device,
    ibmq_20_tokyo,
    linear_device,
)
from repro.hardware.target import (
    Target,
    as_target,
    clear_target_registry,
    coupling_fingerprint,
    intern_coupling,
    intern_target,
    normalise_conflicts,
    target_registry_stats,
)
from repro.qaoa.problems import Level, QAOAProgram


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_target_registry()
    yield
    clear_target_registry()


class _DuckCalibration:
    """Calibration stand-in without canonical error tables."""

    def __init__(self, coupling):
        self.coupling = coupling

    def vic_distance_matrix(self):
        return np.array(self.coupling.distance_matrix(), dtype=float)


class TestFingerprint:
    def test_stable_hex_digest(self):
        t = Target(figure6_device(), figure6_calibration())
        fp = t.fingerprint
        assert isinstance(fp, str) and len(fp) == 64
        assert fp == t.fingerprint  # memoized, stable

    def test_content_equal_instances_agree(self):
        a = Target(figure6_device(), figure6_calibration())
        b = Target(figure6_device(), figure6_calibration())
        assert a is not b
        assert a.fingerprint == b.fingerprint

    def test_calibration_changes_fingerprint(self):
        bare = Target(figure6_device())
        calibrated = Target(figure6_device(), figure6_calibration())
        assert bare.fingerprint != calibrated.fingerprint

    def test_timestamp_excluded(self):
        cal_a = figure6_calibration()
        cal_b = figure6_calibration()
        cal_b.timestamp = "some other day"
        a = Target(cal_a.coupling, cal_a)
        b = Target(cal_b.coupling, cal_b)
        assert a.fingerprint == b.fingerprint

    def test_warnings_change_fingerprint(self):
        g = figure6_device()
        clean = Target(g)
        degraded = Target(g, warnings=("pruned dead coupler (0, 1)",))
        assert clean.fingerprint != degraded.fingerprint

    def test_conflicts_change_fingerprint(self):
        g = ibmq_20_tokyo()
        plain = Target(g)
        conflicted = Target(g, crosstalk_conflicts=[((0, 1), (5, 6))])
        assert plain.fingerprint != conflicted.fingerprint

    def test_duck_typed_calibration_has_no_fingerprint(self):
        g = linear_device(4)
        t = Target(g, _DuckCalibration(g))
        assert t.fingerprint is None

    def test_coupling_fingerprint_distinguishes_topologies(self):
        assert coupling_fingerprint(linear_device(4)) != coupling_fingerprint(
            linear_device(5)
        )
        assert coupling_fingerprint(linear_device(4)) == coupling_fingerprint(
            linear_device(4)
        )

    def test_mismatched_calibration_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            Target(linear_device(4), figure6_calibration())


class TestOracles:
    def test_hop_distances_is_coupling_view(self):
        g = figure6_device()
        t = Target(g)
        assert t.hop_distances() is g.distance_matrix()
        assert not t.hop_distances().flags.writeable

    def test_vic_oracles_match_calibration(self):
        cal = figure6_calibration()
        t = Target(cal.coupling, cal)
        np.testing.assert_array_equal(
            t.vic_distance_matrix(), cal.vic_distance_matrix()
        )
        assert dict(t.vic_edge_weights()) == dict(cal.vic_edge_weights())

    def test_vic_oracles_require_calibration(self):
        t = Target(figure6_device())
        with pytest.raises(ValueError, match="calibration"):
            t.vic_edge_weights()
        with pytest.raises(ValueError, match="calibration"):
            t.vic_distance_matrix()
        with pytest.raises(ValueError, match="calibration"):
            t.vic_distances()

    def test_vic_distances_memoized_with_fresh_warning_lists(self):
        cal = figure6_calibration()
        t = Target(cal.coupling, cal)
        matrix_a, warnings_a = t.vic_distances()
        matrix_b, warnings_b = t.vic_distances()
        assert matrix_a is matrix_b
        assert warnings_a == warnings_b == []
        warnings_a.append("mutated")
        assert t.vic_distances()[1] == []

    def test_vic_distances_degraded_fallback(self):
        g = linear_device(4)
        t = Target(g, _DuckCalibration(g))
        t.calibration.vic_distance_matrix = lambda: (_ for _ in ()).throw(
            ValueError("synthetic failure")
        )
        matrix, warnings = t.vic_distances()
        assert matrix is None
        assert len(warnings) == 1
        assert "falling back to hop distances" in warnings[0]
        # Fallback steers routing back to hop distances.
        assert t.routing_distances("vic") is None

    def test_routing_distances(self):
        cal = figure6_calibration()
        t = Target(cal.coupling, cal)
        assert t.routing_distances("hop") is None
        np.testing.assert_array_equal(
            t.routing_distances("vic"), cal.vic_distance_matrix()
        )
        with pytest.raises(ValueError, match="unknown distance metric"):
            t.routing_distances("bogus")

    def test_weighted_distances_memoized_readonly(self):
        g = figure6_device()
        t = Target(g)
        weights = {e: 1.5 for e in g.edges}
        m = t.weighted_distances(weights)
        assert m is t.weighted_distances(dict(weights))
        assert not m.flags.writeable
        np.testing.assert_array_equal(m, g.weighted_distance_matrix(weights))
        other = t.weighted_distances({e: 2.0 for e in g.edges})
        assert other is not m

    def test_neighbourhood_oracles_match_coupling(self):
        g = ibmq_20_tokyo()
        t = Target(g)
        profile = g.connectivity_profile(radius=2)
        for q in range(g.num_qubits):
            assert set(t.neighbours(q)) == set(g.neighbours(q))
            assert t.connectivity_strength(q) == profile[q]
            assert t.neighbourhood(q, 1) == frozenset(g.neighbours(q))
            assert t.second_neighbours(q) == t.neighbourhood(q, 2) - frozenset(
                g.neighbours(q)
            )

    def test_connectivity_profile_memoized_readonly(self):
        t = Target(ibmq_20_tokyo())
        profile = t.connectivity_profile(radius=2)
        assert profile is t.connectivity_profile(radius=2)
        with pytest.raises(TypeError):
            profile[0] = 99

    def test_neighbourhood_radius_validated(self):
        with pytest.raises(ValueError, match="radius"):
            Target(linear_device(3)).neighbourhood(0, radius=0)

    def test_shortest_path_memoized_fresh_lists(self):
        g = figure6_device()
        t = Target(g)
        path = t.shortest_path(0, 3)
        assert path == g.shortest_path(0, 3)
        other = t.shortest_path(0, 3)
        assert other == path and other is not path
        other.append(99)
        assert t.shortest_path(0, 3) == path

    def test_path_oracle_steers_by_vic(self):
        cal = figure6_calibration()
        t = Target(cal.coupling, cal)
        oracle = t.path_oracle("vic")
        assert oracle(0, 3) == cal.coupling.shortest_path(
            0, 3, dist=cal.vic_distance_matrix()
        )

    def test_conflict_sets_normalised(self):
        t = Target(
            ibmq_20_tokyo(), crosstalk_conflicts=[((1, 0), (6, 5))]
        )
        assert t.conflict_sets() == normalise_conflicts(
            [((0, 1), (5, 6))]
        )


class TestInterning:
    def test_content_equal_targets_intern_to_one(self):
        a = intern_target(figure6_device(), figure6_calibration())
        b = intern_target(figure6_device(), figure6_calibration())
        assert a is b
        stats = target_registry_stats()
        assert stats["target_hits"] == 1
        assert stats["target_misses"] == 1
        assert stats["targets"] == 1

    def test_duck_typed_not_interned(self):
        g = linear_device(4)
        a = intern_target(g, _DuckCalibration(g))
        b = intern_target(g, _DuckCalibration(g))
        assert a is not b
        assert target_registry_stats()["targets"] == 0

    def test_intern_coupling_dedupes_content(self):
        a = intern_coupling(4, [(0, 1), (1, 2), (2, 3)], name="chain")
        b = intern_coupling(4, [(2, 3), (0, 1), (1, 2)], name="chain")
        assert a is b
        assert intern_coupling(4, [(0, 1), (1, 2), (2, 3)]) is not a

    def test_as_target_coercions(self):
        g = figure6_device()
        cal = figure6_calibration()
        t = intern_target(cal.coupling, cal)
        assert as_target(t) is t
        assert as_target(g).coupling is g
        assert as_target(cal) is t
        with pytest.raises(TypeError, match="cannot build a Target"):
            as_target(42)

    def test_pickle_round_trips_to_interned_target(self):
        t = intern_target(figure6_device(), figure6_calibration())
        clone = pickle.loads(pickle.dumps(t))
        assert clone is t

    def test_pickled_coupling_reinterns(self):
        g = intern_coupling(3, [(0, 1), (1, 2)], name="chain3")
        assert pickle.loads(pickle.dumps(g)) is g


def _program():
    return QAOAProgram(
        num_qubits=4,
        edges=[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)],
        levels=[Level(0.7, 0.35)],
    )


class TestCompileIntegration:
    def test_target_keyword_equals_loose_arguments(self):
        cal = figure6_calibration()
        program = _program()
        loose = compile_with_method(
            program,
            cal.coupling,
            "vic",
            calibration=cal,
            rng=np.random.default_rng(7),
        )
        via_target = compile_with_method(
            program,
            method="vic",
            rng=np.random.default_rng(7),
            target=intern_target(cal.coupling, cal),
        )
        assert [
            (i.name, i.qubits, i.params) for i in loose.circuit
        ] == [(i.name, i.qubits, i.params) for i in via_target.circuit]
        assert loose.target_fingerprint == via_target.target_fingerprint

    def test_fingerprint_stamped_and_serialised(self):
        compiled = compile_qaoa(_program(), figure6_device())
        assert compiled.target_fingerprint
        restored = from_json(to_json(compiled))
        assert restored.target_fingerprint == compiled.target_fingerprint

    def test_conflicting_target_and_calibration_rejected(self):
        cal = figure6_calibration()
        other = figure6_calibration()
        other.cnot_error = {
            e: err * 0.5 for e, err in other.cnot_error.items()
        }
        target = intern_target(cal.coupling, cal)
        with pytest.raises(ValueError, match="conflicts"):
            compile_qaoa(_program(), target, calibration=other)

    def test_target_warnings_reach_nothing_implicitly(self):
        # Target warnings are provenance for the fingerprint; compiles
        # do not inject them into the result (callers own that policy).
        t = intern_target(figure6_device(), warnings=("degraded",))
        compiled = compile_qaoa(_program(), t)
        assert "degraded" not in compiled.warnings
