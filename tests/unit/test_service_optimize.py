"""Tests for the OptimizeJob service workload and the `repro optimize`
CLI verb."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.compiler.serialize import FORMAT_VERSION
from repro.qaoa.frontend import problem_from_spec
from repro.qaoa.ising import IsingProblem
from repro.service import (
    OptimizeJob,
    ResultCache,
    execute_optimize_job,
    load_optimize_jobs_jsonl,
    optimize_job_from_dict,
    run_optimize_batch,
)

# MIS on a 5-ring as a QUBO: reward each selected vertex, penalise
# selected neighbours.  Optimum = independence number = 2.
MIS_RING5 = [
    [1, -1, 0, 0, -1],
    [-1, 1, -1, 0, 0],
    [0, -1, 1, -1, 0],
    [0, 0, -1, 1, -1],
    [-1, 0, 0, -1, 1],
]


def _mis_job(**overrides):
    problem = problem_from_spec({"qubo": {"matrix": MIS_RING5}})
    knobs = {
        "p": 1,
        "optimizer": "cobyla",
        "maxiter": 100,
        "restarts": 6,
        "opt_seed": 3,
        "job_id": "mis-ring5",
    }
    knobs.update(overrides)
    return OptimizeJob(problem=problem, **knobs)


class TestContentHash:
    def test_hash_stable_under_quadratic_insertion_order(self):
        quad = {(0, 1): 0.5, (1, 2): -0.25, (0, 2): 1.0}
        fwd = IsingProblem(3, quad)
        rev = IsingProblem(3, dict(reversed(list(quad.items()))))
        assert (
            OptimizeJob(problem=fwd).content_hash()
            == OptimizeJob(problem=rev).content_hash()
        )

    def test_hash_covers_every_knob(self):
        base = _mis_job()
        assert base.content_hash() == _mis_job().content_hash()
        for override in (
            {"p": 2},
            {"optimizer": "nelder-mead"},
            {"maxiter": 99},
            {"restarts": 5},
            {"opt_seed": 4},
        ):
            assert base.content_hash() != _mis_job(**override).content_hash()

    def test_job_id_excluded_from_hash(self):
        assert (
            _mis_job(job_id="a").content_hash()
            == _mis_job(job_id="b").content_hash()
        )

    def test_device_free_proxies(self):
        job = _mis_job()
        assert job.device == "statevector"
        assert job.method == "cobyla"
        assert job.packing_limit is None
        assert job.seed == 3
        assert job.num_qubits == 5


class TestExecute:
    def test_mis_ring5_reaches_good_ratio(self):
        result = execute_optimize_job(_mis_job())
        assert result.ok
        m = result.metrics
        assert m["optimum"] == pytest.approx(2.0)
        assert m["approximation_ratio"] > 0.5
        assert m["evaluations"] > 6
        assert len(m["gammas"]) == 1 and len(m["betas"]) == 1
        assert m["problem_fingerprint"] != m["diagonal_fingerprint"]
        stages = {t["name"] for t in m["optimize_trace"]}
        assert stages == {"population", "search"}

    def test_deterministic_under_seed(self):
        a = execute_optimize_job(_mis_job())
        b = execute_optimize_job(_mis_job())
        assert a.metrics["expectation"] == b.metrics["expectation"]
        assert a.metrics["gammas"] == b.metrics["gammas"]

    def test_invalid_optimizer_is_invalid_not_exception(self):
        result = execute_optimize_job(_mis_job(optimizer="lbfgs"))
        assert not result.ok
        assert result.error_kind == "invalid"
        assert "lbfgs" in result.error


class TestBatchAndCache:
    def test_cold_then_warm_round_trip(self, tmp_path):
        jobs = [_mis_job()]
        cache = ResultCache(
            directory=str(tmp_path), expected_version=FORMAT_VERSION
        )
        cold = run_optimize_batch(jobs, cache=cache)
        assert not cold.failed and not cold.results[0].cached
        warm_cache = ResultCache(
            directory=str(tmp_path), expected_version=FORMAT_VERSION
        )
        warm = run_optimize_batch(jobs, cache=warm_cache)
        assert warm.results[0].cached
        assert (
            warm.results[0].metrics["expectation"]
            == cold.results[0].metrics["expectation"]
        )
        assert warm.summary()["cache_hit_rate"] > 0.0

    def test_optimize_summary_stages(self):
        report = run_optimize_batch([_mis_job()])
        stages = report.optimize_summary()
        assert set(stages) == {"population", "search"}
        for summary in stages.values():
            assert summary["count"] == 1


class TestJsonl:
    def test_job_from_dict_forms(self):
        job = optimize_job_from_dict(
            {
                "id": "q",
                "qubo": {"matrix": [[1, -1], [-1, 1]]},
                "optimize": {"p": 2, "optimizer": "nelder-mead", "seed": 9},
            }
        )
        assert job.job_id == "q"
        assert job.p == 2 and job.optimizer == "nelder-mead"
        assert job.opt_seed == 9

    def test_job_from_generated_family(self):
        job = optimize_job_from_dict(
            {
                "problem": {
                    "family": "qubo",
                    "nodes": 6,
                    "param": 0.5,
                    "seed": 1,
                }
            }
        )
        assert isinstance(job.problem, IsingProblem)
        assert job.num_qubits == 6

    def test_generated_family_is_reproducible(self):
        spec = {"problem": {"family": "qubo", "nodes": 6, "param": 0.5}}
        a = optimize_job_from_dict(dict(spec))
        b = optimize_job_from_dict(dict(spec))
        assert a.content_hash() == b.content_hash()

    def test_load_jsonl_skips_comments_and_names_bad_lines(self):
        lines = [
            "# comment",
            "",
            json.dumps({"qubo": {"matrix": [[1]]}}),
        ]
        assert len(load_optimize_jobs_jsonl(lines)) == 1
        with pytest.raises(ValueError, match="line 1"):
            load_optimize_jobs_jsonl(['{"optimize": {}}'])

    def test_rejects_non_object_knobs(self):
        with pytest.raises(ValueError, match="'optimize' must be an object"):
            optimize_job_from_dict(
                {"qubo": {"matrix": [[1]]}, "optimize": [1]}
            )


class TestCli:
    def test_synthetic_qubo(self):
        out = io.StringIO()
        code = main(
            [
                "optimize", "--family", "qubo", "--nodes", "6",
                "--restarts", "4", "--maxiter", "50", "--no-cache",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "qubo-6" in text
        assert "population" in text and "search" in text

    def test_jsonl_cold_then_warm(self, tmp_path):
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            json.dumps(
                {
                    "id": "mis-ring5",
                    "qubo": {"matrix": MIS_RING5},
                    "optimize": {"maxiter": 60, "restarts": 4, "seed": 3},
                }
            )
            + "\n"
        )
        cache_dir = str(tmp_path / "cache")
        cold_out, warm_out = io.StringIO(), io.StringIO()
        assert (
            main(
                ["optimize", str(jobs_file), "--cache-dir", cache_dir],
                out=cold_out,
            )
            == 0
        )
        assert (
            main(
                ["optimize", str(jobs_file), "--cache-dir", cache_dir],
                out=warm_out,
            )
            == 0
        )
        assert "cached" not in cold_out.getvalue()
        assert "cached" in warm_out.getvalue()

    def test_json_document(self):
        out = io.StringIO()
        code = main(
            [
                "optimize", "--family", "qubo", "--nodes", "5",
                "--restarts", "3", "--maxiter", "40", "--no-cache", "--json",
            ],
            out=out,
        )
        assert code == 0
        document = json.loads(out.getvalue())
        (entry,) = document["results"]
        assert entry["ok"] and entry["num_qubits"] == 5
        assert np.isfinite(entry["expectation"])

    def test_missing_file_exits_2(self, capsys):
        assert main(["optimize", "/nonexistent/jobs.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err
