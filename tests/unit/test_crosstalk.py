"""Unit tests for the optional crosstalk sequentialisation pass."""

import pytest

from repro.circuits import QuantumCircuit, asap_layers, circuit_depth
from repro.compiler.crosstalk import count_conflicts, sequentialize_crosstalk


def _parallel_circuit():
    """Two two-qubit gates in the same ASAP layer on couplings (0,1), (2,3)."""
    return QuantumCircuit(4).cnot(0, 1).cnot(2, 3)


class TestCountConflicts:
    def test_conflict_detected(self):
        qc = _parallel_circuit()
        assert count_conflicts(qc, [((0, 1), (2, 3))]) == 1

    def test_no_conflict_when_serial(self):
        qc = QuantumCircuit(4).cnot(0, 1).cnot(1, 2)
        assert count_conflicts(qc, [((0, 1), (1, 2))]) == 0

    def test_edge_orientation_irrelevant(self):
        qc = _parallel_circuit()
        assert count_conflicts(qc, [((1, 0), (3, 2))]) == 1

    def test_self_conflict_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            count_conflicts(_parallel_circuit(), [((0, 1), (1, 0))])


class TestSequentialize:
    def test_conflicting_gates_split(self):
        qc = _parallel_circuit()
        out = sequentialize_crosstalk(qc, [((0, 1), (2, 3))])
        assert count_conflicts(out, [((0, 1), (2, 3))]) == 0
        assert circuit_depth(out) > circuit_depth(qc)

    def test_non_conflicting_circuit_untouched(self):
        qc = _parallel_circuit()
        out = sequentialize_crosstalk(qc, [((0, 1), (1, 2))])
        assert circuit_depth(out) == circuit_depth(qc)
        assert out.without(["barrier"]).instructions == qc.instructions

    def test_empty_conflict_set_is_identity(self):
        qc = _parallel_circuit()
        out = sequentialize_crosstalk(qc, [])
        assert out.instructions == qc.instructions

    def test_gates_all_preserved(self):
        qc = QuantumCircuit(6)
        qc.cnot(0, 1).cnot(2, 3).cnot(4, 5).h(0)
        out = sequentialize_crosstalk(
            qc, [((0, 1), (2, 3)), ((2, 3), (4, 5))]
        )
        assert out.count_ops().get("cnot") == 3
        assert out.count_ops().get("h") == 1

    def test_three_way_conflict_serialises_pairwise(self):
        qc = QuantumCircuit(6).cnot(0, 1).cnot(2, 3).cnot(4, 5)
        conflicts = [((0, 1), (2, 3)), ((0, 1), (4, 5)), ((2, 3), (4, 5))]
        out = sequentialize_crosstalk(qc, conflicts)
        assert count_conflicts(out, conflicts) == 0
        # All three must now be in distinct layers.
        two_qubit_layers = [
            [i for i in layer if i.is_two_qubit]
            for layer in asap_layers(out)
        ]
        assert max(len(l) for l in two_qubit_layers) == 1

    def test_single_qubit_gates_never_split(self):
        qc = QuantumCircuit(4).h(0).h(1).cnot(2, 3)
        out = sequentialize_crosstalk(qc, [((0, 1), (2, 3))])
        assert circuit_depth(out) == circuit_depth(qc)

    def test_only_listed_couplings_affected(self):
        qc = QuantumCircuit(8)
        qc.cnot(0, 1).cnot(2, 3).cnot(4, 5).cnot(6, 7)
        out = sequentialize_crosstalk(qc, [((0, 1), (2, 3))])
        # (4,5) and (6,7) can still run with everything else.
        assert circuit_depth(out) == 2
