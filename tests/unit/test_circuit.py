"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuits import IBM_BASIS, QuantumCircuit
from repro.circuits.gates import Instruction


class TestConstruction:
    def test_empty(self):
        qc = QuantumCircuit(3)
        assert len(qc) == 0
        assert qc.num_qubits == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="positive"):
            QuantumCircuit(0)

    def test_from_instructions(self):
        insts = [Instruction("h", (0,)), Instruction("cnot", (0, 1))]
        qc = QuantumCircuit(2, insts)
        assert list(qc) == insts

    def test_builder_chaining(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cphase(0.4, 1, 2).measure_all()
        assert [i.name for i in qc] == [
            "h", "cnot", "cphase", "measure", "measure", "measure",
        ]

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError, match="out of range"):
            qc.h(2)
        with pytest.raises(ValueError, match="out of range"):
            qc.cnot(0, 5)

    def test_all_named_builders(self):
        qc = QuantumCircuit(3)
        qc.h(0).x(1).y(2).z(0).rx(0.1, 0).ry(0.2, 1).rz(0.3, 2)
        qc.u1(0.1, 0).u2(0.1, 0.2, 1).u3(0.1, 0.2, 0.3, 2)
        qc.cnot(0, 1).cz(1, 2).swap(0, 2).cphase(0.5, 0, 1).cu1(0.3, 1, 2)
        qc.measure(0).barrier()
        assert len(qc) == 17


class TestQueries:
    def test_count_ops(self):
        qc = QuantumCircuit(2).h(0).h(1).cnot(0, 1)
        assert qc.count_ops() == {"h": 2, "cnot": 1}

    def test_gate_count_excludes_directives(self):
        qc = QuantumCircuit(2).h(0).barrier().measure_all()
        assert qc.gate_count() == 3
        assert qc.gate_count(include_directives=True) == 4

    def test_two_qubit_gates(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).swap(1, 2).measure(0)
        pairs = [i.name for i in qc.two_qubit_gates()]
        assert pairs == ["cnot", "swap"]
        assert qc.num_two_qubit_gates() == 2

    def test_active_qubits(self):
        qc = QuantumCircuit(5).h(1).cnot(1, 3)
        assert qc.active_qubits() == (1, 3)

    def test_equality(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).h(0)
        c = QuantumCircuit(2).h(1)
        assert a == b
        assert a != c
        assert a != QuantumCircuit(3).h(0)

    def test_repr(self):
        qc = QuantumCircuit(2, name="bell").h(0).cnot(0, 1)
        assert "bell" in repr(qc)
        assert "num_instructions=2" in repr(qc)


class TestTransforms:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(2).h(0)
        dup = qc.copy()
        dup.x(1)
        assert len(qc) == 1
        assert len(dup) == 2

    def test_compose(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cnot(0, 1)
        a.compose(b)
        assert [i.name for i in a] == ["h", "cnot"]

    def test_compose_too_large_rejected(self):
        with pytest.raises(ValueError, match="compose"):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_remap(self):
        qc = QuantumCircuit(2).cnot(0, 1)
        mapped = qc.remap({0: 4, 1: 2}, num_qubits=5)
        assert mapped[0].qubits == (4, 2)
        assert mapped.num_qubits == 5

    def test_remap_grows_register_automatically(self):
        qc = QuantumCircuit(2).h(1)
        mapped = qc.remap({1: 7})
        assert mapped.num_qubits == 8

    def test_remap_too_small_register_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            QuantumCircuit(2).h(1).remap({1: 5}, num_qubits=3)

    def test_reversed_ops(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        rev = qc.reversed_ops()
        assert [i.name for i in rev] == ["cnot", "h"]
        assert [i.name for i in qc] == ["h", "cnot"]  # original untouched

    def test_without(self):
        qc = QuantumCircuit(2).h(0).measure_all().barrier()
        stripped = qc.without(["measure", "barrier"])
        assert [i.name for i in stripped] == ["h"]

    def test_only_unitary(self):
        qc = QuantumCircuit(2).h(0).barrier().measure_all()
        assert [i.name for i in qc.only_unitary()] == ["h"]

    def test_validate_basis(self):
        qc = QuantumCircuit(2).cphase(0.3, 0, 1)
        with pytest.raises(ValueError, match="not in basis"):
            qc.validate_basis(IBM_BASIS)
        QuantumCircuit(2).cnot(0, 1).validate_basis(IBM_BASIS)

    def test_measure_all_covers_every_qubit(self):
        qc = QuantumCircuit(4).measure_all()
        measured = sorted(i.qubits[0] for i in qc)
        assert measured == [0, 1, 2, 3]

    def test_barrier_default_spans_all_qubits(self):
        qc = QuantumCircuit(3).barrier()
        assert qc[0].qubits == (0, 1, 2)
