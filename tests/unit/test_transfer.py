"""Unit tests for QAOA parameter transfer across similar instances."""

import numpy as np
import pytest

from repro.qaoa.graphs import random_regular_graph
from repro.qaoa.problems import MaxCutProblem
from repro.qaoa.transfer import (
    learn_parameters,
    transfer_quality,
)


def _regular_family(degree, nodes, count, seed):
    rng = np.random.default_rng(seed)
    return [
        MaxCutProblem.from_graph(random_regular_graph(nodes, degree, rng))
        for _ in range(count)
    ]


class TestLearnParameters:
    def test_basic_shape(self):
        donors = _regular_family(3, 10, 3, seed=0)
        params = learn_parameters(donors, p=1, rng=np.random.default_rng(1))
        assert params.p == 1
        assert len(params.donor_ratios) == 3
        assert all(0.5 <= r <= 1.0 for r in params.donor_ratios)

    def test_empty_donors_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            learn_parameters([])

    def test_canonicalisation_collapses_equivalent_optima(self):
        # Donors from the same family should aggregate to angles that are
        # themselves good for the family (median of scattered equivalent
        # optima would not be).
        donors = _regular_family(3, 12, 4, seed=2)
        params = learn_parameters(donors, p=1, rng=np.random.default_rng(3))
        for donor in donors:
            q = transfer_quality(donor, params, rng=np.random.default_rng(4))
            assert q > 0.9

    def test_single_donor_is_its_own_optimum(self):
        donors = _regular_family(3, 10, 1, seed=5)
        params = learn_parameters(donors, p=1, rng=np.random.default_rng(6))
        q = transfer_quality(donors[0], params, rng=np.random.default_rng(7))
        assert q == pytest.approx(1.0, abs=1e-6)


class TestTransferQuality:
    def test_transfer_within_family_is_cheap(self):
        """The Wecker et al. premise: angles from similar instances nearly
        match per-instance optimisation."""
        donors = _regular_family(3, 10, 4, seed=8)
        recipients = _regular_family(3, 12, 3, seed=9)
        params = learn_parameters(donors, p=1, rng=np.random.default_rng(10))
        qualities = [
            transfer_quality(r, params, rng=np.random.default_rng(11))
            for r in recipients
        ]
        assert np.mean(qualities) > 0.92

    def test_cross_family_transfer_is_worse_or_equal(self):
        sparse_donors = _regular_family(3, 10, 3, seed=12)
        dense_recipient = _regular_family(8, 10, 1, seed=13)[0]
        matched_recipient = _regular_family(3, 10, 1, seed=14)[0]
        params = learn_parameters(
            sparse_donors, p=1, rng=np.random.default_rng(15)
        )
        q_matched = transfer_quality(
            matched_recipient, params, rng=np.random.default_rng(16)
        )
        q_cross = transfer_quality(
            dense_recipient, params, rng=np.random.default_rng(17)
        )
        assert q_matched >= q_cross - 0.05

    def test_quality_bounded_by_one(self):
        donors = _regular_family(4, 10, 3, seed=18)
        params = learn_parameters(donors, p=1, rng=np.random.default_rng(19))
        recipient = _regular_family(4, 12, 1, seed=20)[0]
        q = transfer_quality(recipient, params, rng=np.random.default_rng(21))
        assert q <= 1.0 + 1e-9
