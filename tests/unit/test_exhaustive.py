"""Unit tests for the exhaustive ordering baseline."""

import numpy as np
import pytest

from repro.compiler.exhaustive import exhaustive_best_order
from repro.compiler.ic import IncrementalCompiler
from repro.compiler.mapping import Mapping
from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.hardware import fully_connected_device, linear_device, ring_device

K4_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]


class TestExhaustiveSearch:
    def test_k4_on_full_connectivity_finds_three_layers(self):
        device = fully_connected_device(4)
        result = exhaustive_best_order(
            K4_EDGES, device, Mapping.trivial(4, 4)
        )
        native = decompose_to_basis(result.compiled.circuit)
        # Best possible: 3 CPHASE layers, each cphase = cnot u1 cnot -> 3 ops
        # deep; u1 layer merges, so native depth is small and no swaps.
        assert result.compiled.swap_count == 0
        assert native.depth() <= 9

    def test_counts_unique_permutations(self):
        device = ring_device(4)
        result = exhaustive_best_order(
            [(0, 1), (1, 2), (2, 3)], device, Mapping.trivial(4, 4)
        )
        assert result.orders_tried == 6

    def test_duplicate_pairs_deduplicated(self):
        device = ring_device(4)
        result = exhaustive_best_order(
            [(0, 1), (0, 1)], device, Mapping.trivial(4, 4)
        )
        assert result.orders_tried == 1

    def test_gate_limit_enforced(self):
        device = ring_device(6)
        pairs = [(i, (i + 1) % 6) for i in range(6)] + [(0, 2), (1, 3), (2, 4)]
        with pytest.raises(ValueError, match="permutations"):
            exhaustive_best_order(pairs, device, Mapping.trivial(6, 6))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            exhaustive_best_order([], ring_device(4), Mapping.trivial(4, 4))

    def test_custom_objective(self):
        # Minimise SWAP count instead of depth.
        device = linear_device(4)
        result = exhaustive_best_order(
            [(0, 3), (0, 1)],
            device,
            Mapping.trivial(4, 4),
            objective=lambda c: c.swap_count,
        )
        # Doing (0,1) first is free; (0,3) then costs 2 swaps — or doing
        # (0,3) first moves 0 and 3 inward, making (0,1) cost extra.  The
        # optimum is 2 swaps.
        assert result.compiled.swap_count == 2

    def test_best_order_is_actually_best(self):
        """Verify optimality by re-compiling every order independently."""
        import itertools

        from repro.compiler.backend import ConventionalBackend

        device = ring_device(5)
        pairs = [(0, 2), (1, 3), (2, 4), (0, 1)]
        mapping = Mapping.trivial(5, 5)
        result = exhaustive_best_order(pairs, device, mapping)
        backend = ConventionalBackend(device)
        for perm in itertools.permutations(pairs):
            qc = QuantumCircuit(5)
            for a, b in perm:
                qc.cphase(0.5, a, b)
            compiled = backend.compile(qc, mapping)
            native = decompose_to_basis(compiled.circuit)
            score = native.depth() * 10_000 + native.gate_count()
            assert score >= result.objective


class TestHeuristicsVsOptimum:
    def test_ic_close_to_optimal_on_tiny_instances(self):
        """IC's whole-point check: on instances small enough to brute
        force, IC lands within 25% of the optimal ordering's depth."""
        device = ring_device(6)
        rng = np.random.default_rng(0)
        gaps = []
        for seed in range(5):
            inst_rng = np.random.default_rng(seed)
            pairs = []
            while len(pairs) < 6:
                a, b = inst_rng.choice(6, size=2, replace=False)
                pair = (int(min(a, b)), int(max(a, b)))
                if pair not in pairs:
                    pairs.append(pair)
            mapping = Mapping.trivial(6, 6)
            optimal = exhaustive_best_order(pairs, device, mapping)
            opt_depth = decompose_to_basis(optimal.compiled.circuit).depth()

            compiler = IncrementalCompiler(device, rng=rng)
            ic_mapping = Mapping.trivial(6, 6)
            out = QuantumCircuit(6)
            compiler.compile_block(
                [(a, b, 0.5) for a, b in pairs], ic_mapping, out
            )
            ic_depth = decompose_to_basis(out).depth()
            gaps.append(ic_depth / opt_depth)
        assert np.mean(gaps) < 1.25
