"""Unit tests for Variation-aware IC — the Figure 6 scenario."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler.mapping import Mapping
from repro.compiler.vic import (
    VariationAwareCompiler,
    resolve_vic_distances,
    vic_compiler,
)
from repro.hardware import Calibration, linear_device
from repro.hardware.devices import figure6_calibration, figure6_device


class TestFigure6Scenario:
    """Figure 6(e): with identity mapping, Op1 = CPHASE(q0, q1) should be
    chosen over Op2 = CPHASE(q0, q5) because its coupling is more reliable
    (weighted distance 1.11 vs 1.22), although both are 1 hop away."""

    def test_vic_prioritises_reliable_gate(self):
        cal = figure6_calibration()
        compiler = VariationAwareCompiler(cal)
        mapping = Mapping.trivial(6, 6)
        out = QuantumCircuit(6)
        result = compiler.compile_block(
            [(0, 5, 0.3), (0, 1, 0.3)], mapping, out
        )
        # Gates share q0, so they land in separate layers; the reliable one
        # must come first.
        assert result.layers[0] == [(0, 1)]
        assert result.layers[1] == [(0, 5)]

    def test_weighted_distance_table_matches_figure6d(self):
        cal = figure6_calibration()
        dist = cal.vic_distance_matrix()
        assert dist[0, 1] == pytest.approx(1.11, abs=0.01)
        assert dist[0, 5] == pytest.approx(1.22, abs=0.01)
        assert dist[2, 5] == pytest.approx(3.45, abs=0.01)

    def test_ic_sees_a_tie_where_vic_does_not(self):
        g = figure6_device()
        assert g.distance(0, 1) == g.distance(0, 5) == 1
        cal = figure6_calibration()
        dist = cal.vic_distance_matrix()
        assert dist[0, 1] < dist[0, 5]


class TestVariationAwareRouting:
    def test_swaps_avoid_unreliable_paths(self):
        # Square 0-1-2-3-0; edge (0,3) is terrible.  Routing q0 to q2 must
        # go via qubit 1.
        from repro.hardware import CouplingGraph

        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        cal = Calibration(
            g,
            {(0, 1): 0.01, (1, 2): 0.01, (2, 3): 0.01, (0, 3): 0.45},
        )
        compiler = VariationAwareCompiler(cal)
        mapping = Mapping.trivial(4, 4)
        out = QuantumCircuit(4)
        compiler.compile_block([(0, 2, 0.3)], mapping, out)
        swap_edges = {
            tuple(sorted(i.qubits)) for i in out if i.name == "swap"
        }
        assert (0, 3) not in swap_edges


class TestConstruction:
    def test_factory_equivalent_to_class(self):
        cal = figure6_calibration()
        a = vic_compiler(cal)
        b = VariationAwareCompiler(cal)
        np.testing.assert_allclose(a.distance_matrix, b.distance_matrix)

    def test_calibration_attached(self):
        cal = figure6_calibration()
        assert VariationAwareCompiler(cal).calibration is cal

    def test_coupling_taken_from_calibration(self):
        cal = figure6_calibration()
        assert VariationAwareCompiler(cal).coupling.name == "figure6_6q"

    def test_packing_limit_forwarded(self):
        cal = figure6_calibration()
        compiler = VariationAwareCompiler(cal, packing_limit=1)
        mapping = Mapping.trivial(6, 6)
        out = QuantumCircuit(6)
        result = compiler.compile_block(
            [(0, 1, 0.1), (2, 3, 0.1)], mapping, out
        )
        assert all(len(layer) == 1 for layer in result.layers)


class _BrokenCalibration:
    """Calibration stand-in whose VIC distance table is unusable."""

    def __init__(self, coupling, mode):
        self.coupling = coupling
        self._mode = mode

    def vic_distance_matrix(self):
        if self._mode == "raises":
            raise ValueError("synthetic calibration failure")
        # distance_matrix() is a cached read-only view; copy before
        # poisoning it so the NaN write doesn't raise.
        dist = np.array(self.coupling.distance_matrix(), dtype=float)
        dist[0, 1] = dist[1, 0] = np.nan
        return dist


class TestGracefulFallback:
    def test_clean_calibration_has_no_warnings(self):
        dist, warnings = resolve_vic_distances(figure6_calibration())
        assert dist is not None
        assert warnings == []

    def test_exception_falls_back_with_warning(self):
        g = linear_device(4)
        dist, warnings = resolve_vic_distances(_BrokenCalibration(g, "raises"))
        assert dist is None
        assert len(warnings) == 1
        assert "falling back to hop distances" in warnings[0]

    def test_non_finite_entries_fall_back_with_warning(self):
        g = linear_device(4)
        dist, warnings = resolve_vic_distances(_BrokenCalibration(g, "nan"))
        assert dist is None
        assert "non-finite" in warnings[0]

    def test_compiler_degrades_to_hop_distances(self):
        g = linear_device(4)
        compiler = VariationAwareCompiler(_BrokenCalibration(g, "nan"))
        assert compiler.warnings
        np.testing.assert_allclose(
            compiler.distance_matrix, g.distance_matrix()
        )
