"""Unit tests for approximation ratio, ARG and physical-count decoding."""

import numpy as np
import pytest

from repro.compiler import compile_with_method
from repro.hardware import linear_device, uniform_calibration
from repro.qaoa.evaluation import (
    approximation_ratio,
    approximation_ratio_gap,
    decode_physical_counts,
    evaluate_arg,
)
from repro.qaoa.problems import MaxCutProblem
from repro.sim import NoiseModel, NoisySimulator, StatevectorSimulator


class TestDecode:
    def test_identity_mapping(self):
        counts = {"011": 5}
        out = decode_physical_counts(counts, {0: 0, 1: 1, 2: 2}, 3)
        assert out == {"011": 5}

    def test_permuted_mapping(self):
        # logical 0 lives on physical 2, logical 1 on physical 0.
        counts = {"100": 7}  # physical: p2=1, p1=0, p0=0
        out = decode_physical_counts(counts, {0: 2, 1: 0}, 2)
        # logical q0 = bit of p2 = 1; logical q1 = bit of p0 = 0 -> "01"
        assert out == {"01": 7}

    def test_extra_physical_qubits_marginalised(self):
        counts = {"10110": 3}  # 5 physical qubits, 2 logical
        out = decode_physical_counts(counts, {0: 1, 1: 4}, 2)
        # q0 = bit of p1 = 1, q1 = bit of p4 = 1 -> "11"
        assert out == {"11": 3}

    def test_merging_after_marginalisation(self):
        counts = {"001": 2, "101": 3}  # p2 differs but is unmapped
        out = decode_physical_counts(counts, {0: 0}, 1)
        assert out == {"1": 5}

    def test_missing_logical_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            decode_physical_counts({"01": 1}, {0: 0}, 2)


class TestApproximationRatio:
    def test_optimal_samples_give_one(self):
        problem = MaxCutProblem(2, [(0, 1)])
        assert approximation_ratio({"01": 10}, problem) == pytest.approx(1.0)

    def test_worst_samples_give_zero(self):
        problem = MaxCutProblem(2, [(0, 1)])
        assert approximation_ratio({"00": 4, "11": 6}, problem) == 0.0

    def test_mixture(self):
        problem = MaxCutProblem(2, [(0, 1)])
        counts = {"01": 5, "00": 5}
        assert approximation_ratio(counts, problem) == pytest.approx(0.5)

    def test_empty_rejected(self):
        problem = MaxCutProblem(2, [(0, 1)])
        with pytest.raises(ValueError, match="empty"):
            approximation_ratio({}, problem)


class TestARGFormula:
    def test_basic(self):
        assert approximation_ratio_gap(0.8, 0.6) == pytest.approx(25.0)

    def test_zero_gap(self):
        assert approximation_ratio_gap(0.9, 0.9) == 0.0

    def test_negative_gap_possible(self):
        # Hardware beating the simulator is a negative gap, not an error.
        assert approximation_ratio_gap(0.5, 0.6) == pytest.approx(-20.0)

    def test_zero_r0_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            approximation_ratio_gap(0.0, 0.5)


class TestEvaluateArg:
    def _setup(self, cnot_error):
        problem = MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])
        program = problem.to_program([0.6], [0.3])
        device = linear_device(4)
        compiled = compile_with_method(
            program, device, "ic", rng=np.random.default_rng(0)
        )
        cal = uniform_calibration(device, cnot_error=cnot_error)
        ideal = StatevectorSimulator()
        noisy = NoisySimulator(NoiseModel.from_calibration(cal), trajectories=16)
        return problem, compiled, ideal, noisy

    def test_noiseless_hardware_gives_near_zero_arg(self):
        problem, compiled, ideal, noisy = self._setup(cnot_error=0.0)
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=4000,
            rng=np.random.default_rng(1),
        )
        assert abs(result.arg) < 5.0  # only shot noise remains

    def test_noise_produces_positive_arg(self):
        problem, compiled, ideal, noisy = self._setup(cnot_error=0.15)
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=4000,
            rng=np.random.default_rng(2),
        )
        assert result.arg > 2.0
        assert result.rh < result.r0

    def test_result_fields(self):
        problem, compiled, ideal, noisy = self._setup(cnot_error=0.05)
        result = evaluate_arg(
            compiled, problem, ideal, noisy, shots=512,
            rng=np.random.default_rng(3),
        )
        assert result.shots == 512
        assert 0.0 < result.r0 <= 1.0
        assert result.arg == pytest.approx(
            100.0 * (result.r0 - result.rh) / result.r0
        )
