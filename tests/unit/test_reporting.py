"""Unit tests for text-table reporting."""

from repro.experiments.reporting import banner, format_ratio_table, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text
        assert "0.123456" not in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], float_fmt="{:.5f}")
        assert "0.12346" in text

    def test_non_float_cells_pass_through(self):
        text = format_table(["name", "n"], [["qaim", 42]])
        assert "qaim" in text
        assert "42" in text


class TestFormatRatioTable:
    def test_rows_and_columns(self):
        ratios = {
            ("er", 0.1): {"naive": 1.0, "qaim": 0.8},
            ("er", 0.5): {"naive": 1.0, "qaim": 0.95},
        }
        text = format_ratio_table(ratios, ["naive", "qaim"])
        assert "er/0.1" in text
        assert "0.800" in text

    def test_missing_method_is_nan(self):
        ratios = {("er", 0.1): {"naive": 1.0}}
        text = format_ratio_table(ratios, ["naive", "qaim"])
        assert "nan" in text


class TestBanner:
    def test_contains_title(self):
        text = banner("Figure 7")
        assert "Figure 7" in text
        assert "=" * 10 in text
