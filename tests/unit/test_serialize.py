"""Unit tests for compiled-result JSON serialisation."""

import json

import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import (
    CompiledQAOA,
    ConventionalBackend,
    Mapping,
    compile_with_method,
)
from repro.compiler.serialize import from_json, to_json
from repro.hardware import ibmq_16_melbourne, melbourne_calibration, ring_device
from repro.qaoa import MaxCutProblem


@pytest.fixture
def compiled_qaoa(rng):
    problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    program = problem.to_program([0.5, -0.2], [0.3, 0.1])
    return compile_with_method(program, ring_device(6), "ic", rng=rng)


class TestQAOARoundTrip:
    def test_round_trip_identity(self, compiled_qaoa):
        restored = from_json(to_json(compiled_qaoa))
        assert isinstance(restored, CompiledQAOA)
        assert restored.circuit.instructions == compiled_qaoa.circuit.instructions
        assert restored.initial_mapping == compiled_qaoa.initial_mapping
        assert restored.final_mapping == compiled_qaoa.final_mapping
        assert restored.swap_count == compiled_qaoa.swap_count
        assert restored.method == compiled_qaoa.method
        assert restored.coupling.edges == compiled_qaoa.coupling.edges

    def test_program_restored(self, compiled_qaoa):
        restored = from_json(to_json(compiled_qaoa))
        assert restored.program.num_qubits == 5
        assert restored.program.p == 2
        assert restored.program.edges == compiled_qaoa.program.edges

    def test_metrics_recomputable_after_restore(self, compiled_qaoa):
        restored = from_json(to_json(compiled_qaoa))
        assert restored.depth() == compiled_qaoa.depth()
        assert restored.gate_count() == compiled_qaoa.gate_count()

    def test_linear_terms_survive(self, rng):
        from repro.qaoa import IsingProblem

        problem = IsingProblem(3, {(0, 1): 1.0, (1, 2): -0.5}, {0: 0.7})
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(4), "ip", rng=rng
        )
        restored = from_json(to_json(compiled))
        assert restored.program.linear == {0: 0.7}

    def test_payload_is_valid_json_with_qasm(self, compiled_qaoa):
        payload = json.loads(to_json(compiled_qaoa))
        assert payload["kind"] == "qaoa"
        assert payload["qasm"].startswith("OPENQASM 2.0;")


class TestCircuitRoundTrip:
    def test_raw_backend_result(self):
        device = ring_device(5)
        backend = ConventionalBackend(device)
        compiled = backend.compile(
            QuantumCircuit(5).cphase(0.4, 0, 2).cnot(1, 3),
            Mapping.trivial(5, 5),
        )
        restored = from_json(to_json(compiled))
        assert not isinstance(restored, CompiledQAOA)
        assert restored.circuit.instructions == compiled.circuit.instructions
        assert restored.swap_count == compiled.swap_count


class TestValidation:
    def test_version_check(self, compiled_qaoa):
        payload = json.loads(to_json(compiled_qaoa))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            from_json(json.dumps(payload))

    def test_stale_version_error_is_descriptive(self, compiled_qaoa):
        from repro.compiler.serialize import FORMAT_VERSION

        payload = json.loads(to_json(compiled_qaoa))
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError) as excinfo:
            from_json(json.dumps(payload))
        message = str(excinfo.value)
        assert str(FORMAT_VERSION) in message
        assert "recompile" in message

    def test_missing_version_rejected(self, compiled_qaoa):
        payload = json.loads(to_json(compiled_qaoa))
        del payload["format_version"]
        with pytest.raises(ValueError, match="format_version"):
            from_json(json.dumps(payload))

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            from_json(json.dumps([1, 2, 3]))

    def test_round_trip_unaffected_by_stale_rejection(self, compiled_qaoa):
        # A stale payload raises; the same document with the correct
        # version still round-trips — rejection is purely the version gate.
        good = to_json(compiled_qaoa)
        stale = json.loads(good)
        stale["format_version"] = 0
        with pytest.raises(ValueError):
            from_json(json.dumps(stale))
        restored = from_json(good)
        assert (
            restored.circuit.instructions == compiled_qaoa.circuit.instructions
        )

    def test_format_version_exported(self):
        from repro.compiler.serialize import FORMAT_VERSION, _FORMAT_VERSION

        assert FORMAT_VERSION == _FORMAT_VERSION
        assert isinstance(FORMAT_VERSION, int)

    def test_tampered_circuit_fails_validation(self, compiled_qaoa):
        payload = json.loads(to_json(compiled_qaoa))
        # Inject a coupling-violating gate into the QASM.
        payload["qasm"] = payload["qasm"].replace(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\ncreg c[6];",
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\ncreg c[6];\ncx q[0],q[3];",
        )
        with pytest.raises(AssertionError, match="violates"):
            from_json(json.dumps(payload))

    def test_vic_result_round_trips(self, rng):
        problem = MaxCutProblem(6, [(0, 1), (1, 2), (2, 3), (4, 5), (0, 5)])
        program = problem.to_program([0.4], [0.2])
        compiled = compile_with_method(
            program,
            ibmq_16_melbourne(),
            "vic",
            calibration=melbourne_calibration(),
            rng=rng,
        )
        restored = from_json(to_json(compiled))
        assert restored.method == "qaim+vic"
        assert restored.depth() == compiled.depth()
