"""Unit tests for compilation analysis."""

import numpy as np

from repro.compiler import compile_with_method
from repro.compiler.analysis import analyze_compiled
from repro.hardware import linear_device, ring_device
from repro.qaoa import MaxCutProblem


def _compiled(method="ic", device=None, seed=0):
    device = device or ring_device(8)
    problem = MaxCutProblem(
        6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (0, 3), (1, 4)]
    )
    program = problem.to_program([0.6], [0.3])
    return compile_with_method(
        program, device, method, rng=np.random.default_rng(seed)
    )


class TestAnalyzeCompiled:
    def test_routing_overhead_consistent(self):
        compiled = _compiled()
        analysis = analyze_compiled(compiled)
        assert analysis.routing_native_gates == 3 * compiled.swap_count
        assert 0.0 <= analysis.routing_overhead < 1.0
        assert analysis.total_native_gates == compiled.gate_count()

    def test_no_swaps_means_zero_overhead(self):
        from repro.hardware import fully_connected_device

        compiled = _compiled(device=fully_connected_device(6))
        analysis = analyze_compiled(compiled)
        assert compiled.swap_count == 0
        assert analysis.routing_overhead == 0.0
        assert all(v == 0 for v in analysis.swap_traffic.values())

    def test_swap_traffic_totals(self):
        compiled = _compiled(device=linear_device(7))
        analysis = analyze_compiled(compiled)
        assert sum(analysis.swap_traffic.values()) == 2 * compiled.swap_count

    def test_displacement_matches_mappings(self):
        compiled = _compiled(device=linear_device(7))
        analysis = analyze_compiled(compiled)
        for logical, start in compiled.initial_mapping.items():
            end = compiled.final_mapping[logical]
            expected = compiled.coupling.distance(start, end)
            assert analysis.displacement[logical] == expected

    def test_layer_occupancy_sums_to_layer_count(self):
        from repro.circuits import asap_layers

        compiled = _compiled()
        analysis = analyze_compiled(compiled)
        n_layers = len(asap_layers(compiled.circuit))
        assert sum(analysis.layer_occupancy.values()) == n_layers
        assert analysis.mean_concurrency > 0

    def test_edge_utilisation_counts_all_two_qubit_gates(self):
        compiled = _compiled()
        analysis = analyze_compiled(compiled)
        total = sum(analysis.edge_utilisation.values())
        assert total == compiled.circuit.num_two_qubit_gates()

    def test_hottest_helpers(self):
        compiled = _compiled(device=linear_device(7))
        analysis = analyze_compiled(compiled)
        hot_qubits = analysis.hottest_qubits(top=2)
        assert len(hot_qubits) <= 2
        if hot_qubits:
            assert hot_qubits[0][1] == max(analysis.swap_traffic.values())
        hot_edges = analysis.hottest_edges(top=2)
        assert hot_edges[0][1] == max(analysis.edge_utilisation.values())

    def test_ip_has_higher_concurrency_than_naive(self):
        """IP's whole point, visible in the analysis numbers (averaged —
        a lucky random order can occasionally tie or beat IP)."""
        naive_vals, ip_vals = [], []
        for seed in range(6):
            naive_vals.append(
                analyze_compiled(_compiled(method="naive", seed=seed)).mean_concurrency
            )
            ip_vals.append(
                analyze_compiled(_compiled(method="ip", seed=seed)).mean_concurrency
            )
        assert np.mean(ip_vals) >= np.mean(naive_vals)

    def test_qaim_reduces_displacement_vs_random_start(self):
        rng_depths = []
        qaim_depths = []
        for seed in range(6):
            naive = analyze_compiled(
                _compiled(method="naive", device=linear_device(7), seed=seed)
            )
            qaim = analyze_compiled(
                _compiled(method="qaim", device=linear_device(7), seed=seed)
            )
            rng_depths.append(sum(naive.displacement.values()))
            qaim_depths.append(sum(qaim.displacement.values()))
        assert np.mean(qaim_depths) <= np.mean(rng_depths) + 1.0
