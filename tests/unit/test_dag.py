"""Unit tests for ASAP layering and depth metrics — including the paper's
Figure 1(b)/(c) motivating example."""

from repro.circuits import (
    QuantumCircuit,
    asap_layers,
    circuit_depth,
    layer_qubit_sets,
    qubit_activity,
    two_qubit_depth,
)


def _qaoa_k4(edge_order, gamma=0.5, beta=0.3, measure=True):
    """Figure 1-style QAOA circuit for the 4-node 3-regular graph (K4)."""
    qc = QuantumCircuit(4)
    for q in range(4):
        qc.h(q)
    for a, b in edge_order:
        qc.cphase(gamma, a, b)
    for q in range(4):
        qc.rx(2 * beta, q)
    if measure:
        qc.measure_all()
    return qc


class TestFigure1Motivation:
    """Figure 1(b) vs 1(c): gate re-ordering shrinks depth from 9 to 6
    time steps (including measurement) on fully connected hardware."""

    # circ-1 in Figure 1(b): a "random" order where consecutive CPHASEs
    # share qubits, so every gate serialises into its own layer.
    CIRC1_ORDER = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)]
    # circ-2 in Figure 1(c): three perfectly packed layers.
    CIRC2_ORDER = [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)]

    def test_random_order_takes_9_time_steps(self):
        assert circuit_depth(_qaoa_k4(self.CIRC1_ORDER)) == 9

    def test_intelligent_order_takes_6_time_steps(self):
        assert circuit_depth(_qaoa_k4(self.CIRC2_ORDER)) == 6

    def test_reordering_gives_50_percent_speedup(self):
        d1 = circuit_depth(_qaoa_k4(self.CIRC1_ORDER))
        d2 = circuit_depth(_qaoa_k4(self.CIRC2_ORDER))
        assert d1 / d2 == 1.5  # "circ-2 will be 50% faster"

    def test_6_is_the_best_and_9_the_worst_order(self):
        # Exhaustive over all 720 CPHASE orders: the best possible depth is
        # 6 (circ-2) and the worst 9 (circ-1) — the exact span Figure 1
        # illustrates.
        from itertools import permutations

        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        depths = {
            circuit_depth(_qaoa_k4(order)) for order in permutations(edges)
        }
        assert min(depths) == 6
        assert max(depths) == 9

    def test_cphase_layers_of_circ2_are_three(self):
        # Strip the H/RX/measure shell: 6 CPHASEs pack into 3 layers.
        qc = QuantumCircuit(4)
        for a, b in self.CIRC2_ORDER:
            qc.cphase(0.5, a, b)
        assert circuit_depth(qc) == 3


class TestAsapLayers:
    def test_disjoint_gates_share_a_layer(self):
        qc = QuantumCircuit(4).cnot(0, 1).cnot(2, 3)
        layers = asap_layers(qc)
        assert len(layers) == 1
        assert len(layers[0]) == 2

    def test_dependent_gates_serialise(self):
        qc = QuantumCircuit(3).cnot(0, 1).cnot(1, 2)
        assert len(asap_layers(qc)) == 2

    def test_gate_falls_back_to_earliest_layer(self):
        # h(2) can run in layer 0 even though it appears last.
        qc = QuantumCircuit(3).cnot(0, 1).cnot(0, 1).h(2)
        layers = asap_layers(qc)
        assert any(inst.name == "h" for inst in layers[0])

    def test_layers_have_disjoint_qubits(self):
        qc = QuantumCircuit(5)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]:
            qc.cphase(0.2, a, b)
        for qubits in layer_qubit_sets(asap_layers(qc)):
            assert len(qubits) == len(set(qubits))

    def test_barrier_not_emitted_but_blocks(self):
        qc = QuantumCircuit(2).h(0).barrier().h(1)
        layers = asap_layers(qc)
        # h(1) is forced after the barrier even though qubit 1 was free.
        assert len(layers) == 2
        assert layers[1][0].qubits == (1,)

    def test_empty_circuit(self):
        assert asap_layers(QuantumCircuit(2)) == []


class TestDepth:
    def test_empty_depth_zero(self):
        assert circuit_depth(QuantumCircuit(3)) == 0

    def test_single_gate(self):
        assert circuit_depth(QuantumCircuit(1).h(0)) == 1

    def test_measurements_count_as_time_steps(self):
        qc = QuantumCircuit(1).h(0).measure(0)
        assert circuit_depth(qc) == 2

    def test_barriers_do_not_count(self):
        qc = QuantumCircuit(2).h(0).barrier().h(0)
        assert circuit_depth(qc) == 2

    def test_depth_equals_layer_count(self):
        qc = QuantumCircuit(4)
        for a, b in [(0, 1), (2, 3), (1, 2), (0, 3), (0, 2)]:
            qc.cphase(0.1, a, b)
        assert circuit_depth(qc) == len(asap_layers(qc))

    def test_circuit_method_delegates(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        assert qc.depth() == circuit_depth(qc) == 2


class TestTwoQubitDepth:
    def test_single_qubit_gates_free(self):
        qc = QuantumCircuit(2).h(0).h(0).h(0)
        assert two_qubit_depth(qc) == 0

    def test_counts_only_two_qubit_critical_path(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).rx(0.3, 1).cnot(1, 2)
        assert two_qubit_depth(qc) == 2

    def test_parallel_two_qubit_gates(self):
        qc = QuantumCircuit(4).cnot(0, 1).cnot(2, 3)
        assert two_qubit_depth(qc) == 1

    def test_never_exceeds_full_depth(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2).measure_all()
        assert two_qubit_depth(qc) <= circuit_depth(qc)


class TestQubitActivity:
    def test_counts_per_qubit(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cphase(0.3, 0, 2)
        activity = qubit_activity(qc)
        assert activity == {0: 3, 1: 1, 2: 1}

    def test_directives_ignored(self):
        qc = QuantumCircuit(2).barrier().h(0)
        assert qubit_activity(qc) == {0: 1, 1: 0}
