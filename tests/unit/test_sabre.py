"""Unit tests for the SABRE-style lookahead backend."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler.backend import ConventionalBackend
from repro.compiler.mapping import Mapping
from repro.compiler.sabre import SabreBackend
from repro.hardware import (
    CouplingGraph,
    ibmq_20_tokyo,
    linear_device,
    ring_device,
)

K4_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]


def _cphase_circuit(pairs, n):
    qc = QuantumCircuit(n)
    for a, b in pairs:
        qc.cphase(0.5, a, b)
    return qc


class TestBasicRouting:
    def test_adjacent_gates_need_no_swaps(self):
        backend = SabreBackend(linear_device(3))
        result = backend.compile(
            QuantumCircuit(3).cnot(0, 1).cnot(1, 2), Mapping.trivial(3, 3)
        )
        assert result.swap_count == 0

    def test_distant_gate_routed(self):
        backend = SabreBackend(linear_device(5))
        result = backend.compile(
            QuantumCircuit(5).cnot(0, 4), Mapping.trivial(5, 5)
        )
        result.validate()
        assert result.swap_count >= 1
        # The CNOT itself must be present and compliant.
        assert result.circuit.count_ops()["cnot"] == 1

    def test_single_qubit_gates_and_measures_remap(self):
        backend = SabreBackend(linear_device(3))
        mapping = Mapping({0: 2, 1: 0}, 3)
        result = backend.compile(
            QuantumCircuit(2).h(0).measure(1), mapping
        )
        assert result.circuit[0].qubits == (2,)
        assert result.circuit[1].qubits == (0,)

    def test_k4_on_line_compiles(self):
        backend = SabreBackend(linear_device(4))
        result = backend.compile(
            _cphase_circuit(K4_EDGES, 4), Mapping.trivial(4, 4)
        )
        result.validate()
        assert result.circuit.count_ops()["cphase"] == 6

    def test_dependency_order_preserved_per_qubit(self):
        # Two gates on the same pair must come out in program order.
        qc = QuantumCircuit(2).cphase(0.1, 0, 1).cphase(0.9, 0, 1)
        backend = SabreBackend(linear_device(2))
        result = backend.compile(qc, Mapping.trivial(2, 2))
        angles = [i.params[0] for i in result.circuit if i.name == "cphase"]
        assert angles == [0.1, 0.9]

    def test_mapping_not_mutated_by_compile(self):
        backend = SabreBackend(linear_device(4))
        mapping = Mapping.trivial(4, 4)
        backend.compile(QuantumCircuit(4).cnot(0, 3), mapping)
        assert mapping.as_dict() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_continue_compile_mutates_mapping(self):
        backend = SabreBackend(linear_device(4))
        mapping = Mapping.trivial(4, 4)
        out = QuantumCircuit(4)
        swaps = backend.continue_compile(
            QuantumCircuit(4).cnot(0, 3), mapping, out
        )
        assert swaps >= 1
        assert mapping.as_dict() != {0: 0, 1: 1, 2: 2, 3: 3}


class TestHeuristicQuality:
    def test_no_worse_than_2x_layered_on_dense_workload(self):
        """SABRE's lookahead should be in the same league as the greedy
        per-gate router on a routing-heavy workload."""
        device = linear_device(6)
        pairs = [(0, 5), (1, 4), (2, 5), (0, 3), (1, 5), (2, 4)]
        circuit = _cphase_circuit(pairs, 6)
        layered = ConventionalBackend(device).compile(
            circuit, Mapping.trivial(6, 6)
        )
        sabre = SabreBackend(device).compile(circuit, Mapping.trivial(6, 6))
        assert sabre.swap_count <= 2 * max(layered.swap_count, 1)

    def test_lookahead_helps_on_a_crafted_case(self):
        """With (0,3) followed by many (3,x) gates on a line, lookahead
        should not move qubit 3 pointlessly far."""
        device = linear_device(6)
        pairs = [(0, 3), (3, 4), (3, 5)]
        sabre = SabreBackend(device).compile(
            _cphase_circuit(pairs, 6), Mapping.trivial(6, 6)
        )
        sabre.validate()
        assert sabre.swap_count <= 5

    def test_weighted_distance_matrix_steers_routing(self):
        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        dist = g.weighted_distance_matrix(
            {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (0, 3): 50.0}
        )
        backend = SabreBackend(g, distance_matrix=dist)
        result = backend.compile(
            QuantumCircuit(4).cnot(0, 2), Mapping.trivial(4, 4)
        )
        swap_edges = {
            tuple(sorted(i.qubits)) for i in result.circuit if i.name == "swap"
        }
        assert (0, 3) not in swap_edges


class TestAsIncrementalBackend:
    def test_ic_runs_on_sabre(self):
        from repro.compiler.ic import IncrementalCompiler

        device = ring_device(8)
        compiler = IncrementalCompiler(
            device, backend=SabreBackend(device), rng=np.random.default_rng(0)
        )
        mapping = Mapping.trivial(6, 8)
        out = QuantumCircuit(8)
        gates = [(0, 3, 0.5), (1, 4, 0.5), (2, 5, 0.5), (0, 5, 0.5)]
        compiler.compile_block(gates, mapping, out)
        assert out.count_ops()["cphase"] == 4
        for inst in out:
            if inst.is_two_qubit:
                assert device.has_edge(*inst.qubits)

    def test_flow_router_option(self):
        from repro.compiler import compile_with_method
        from repro.qaoa import MaxCutProblem

        problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program,
            ibmq_20_tokyo(),
            "ic",
            rng=np.random.default_rng(1),
            router="sabre",
        )
        compiled.validate()
        assert compiled.circuit.count_ops()["cphase"] == 5

    def test_unknown_router_rejected(self):
        from repro.compiler import compile_qaoa
        from repro.qaoa import MaxCutProblem

        problem = MaxCutProblem(3, [(0, 1), (1, 2)])
        program = problem.to_program([0.5], [0.3])
        with pytest.raises(ValueError, match="unknown router"):
            compile_qaoa(program, ring_device(4), router="magic")
