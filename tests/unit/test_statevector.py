"""Unit tests for the dense statevector simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import gate_spec
from repro.sim.statevector import StatevectorSimulator, apply_gate, zero_state


def _kron_apply(matrix, qubits, num_qubits, state_flat):
    """Reference implementation: build the full 2^n x 2^n operator."""
    dim = 2 ** num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    for i in range(dim):
        for j in range(dim):
            # matrix element <i|U|j> factorises over gate and spectator bits
            ok = True
            for q in range(num_qubits):
                if q in qubits:
                    continue
                if (i >> q) & 1 != (j >> q) & 1:
                    ok = False
                    break
            if not ok:
                continue
            row = sum(((i >> q) & 1) << t for t, q in enumerate(qubits))
            col = sum(((j >> q) & 1) << t for t, q in enumerate(qubits))
            full[i, j] = matrix[row, col]
    return full @ state_flat


class TestApplyGate:
    @pytest.mark.parametrize("qubit", [0, 1, 2])
    def test_single_qubit_matches_kron(self, qubit, rng):
        n = 3
        state = rng.normal(size=2 ** n) + 1j * rng.normal(size=2 ** n)
        state /= np.linalg.norm(state)
        m = gate_spec("u3").matrix((0.3, 0.7, -0.2))
        ours = apply_gate(state.reshape((2,) * n), m, (qubit,)).reshape(-1)
        ref = _kron_apply(m, (qubit,), n, state)
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 2), (2, 1)])
    def test_two_qubit_matches_kron(self, qubits, rng):
        n = 3
        state = rng.normal(size=2 ** n) + 1j * rng.normal(size=2 ** n)
        state /= np.linalg.norm(state)
        m = gate_spec("cnot").matrix()
        ours = apply_gate(state.reshape((2,) * n), m, qubits).reshape(-1)
        ref = _kron_apply(m, qubits, n, state)
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_norm_preserved(self, rng):
        state = zero_state(4)
        for _ in range(20):
            q = int(rng.integers(4))
            state = apply_gate(state, gate_spec("h").matrix(), (q,))
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestRun:
    def test_zero_state_default(self):
        sim = StatevectorSimulator()
        out = sim.run(QuantumCircuit(2))
        np.testing.assert_allclose(out, [1, 0, 0, 0])

    def test_bell_state(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        out = sim.run(qc)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_x_flips_correct_qubit(self):
        sim = StatevectorSimulator()
        out = sim.run(QuantumCircuit(3).x(1))
        # |010> little endian = index 2
        assert abs(out[2]) == pytest.approx(1.0)

    def test_measure_and_barrier_ignored(self):
        sim = StatevectorSimulator()
        a = sim.run(QuantumCircuit(2).h(0))
        b = sim.run(QuantumCircuit(2).h(0).barrier().measure_all())
        np.testing.assert_allclose(a, b)

    def test_initial_state_override(self):
        sim = StatevectorSimulator()
        init = np.zeros(4, dtype=complex)
        init[3] = 1.0
        out = sim.run(QuantumCircuit(2), initial_state=init)
        np.testing.assert_allclose(out, init)

    def test_size_guard(self):
        sim = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError, match="exceeds"):
            sim.run(QuantumCircuit(4))


class TestProbabilitiesAndSampling:
    def test_probabilities_normalised(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(3).h(0).h(1).h(2)
        probs = sim.probabilities(qc)
        assert probs.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(probs, np.full(8, 1 / 8), atol=1e-12)

    def test_sampling_reproducible(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        a = sim.sample_counts(qc, 100, np.random.default_rng(3))
        b = sim.sample_counts(qc, 100, np.random.default_rng(3))
        assert a == b

    def test_bell_samples_only_correlated(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        counts = sim.sample_counts(qc, 500, np.random.default_rng(0))
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 500

    def test_bitstring_orientation(self):
        # Flip only qubit 0 -> string "01" (qubit 0 is the rightmost bit).
        sim = StatevectorSimulator()
        counts = sim.sample_counts(
            QuantumCircuit(2).x(0), 10, np.random.default_rng(0)
        )
        assert counts == {"01": 10}

    def test_invalid_shots(self):
        sim = StatevectorSimulator()
        with pytest.raises(ValueError, match="shots"):
            sim.sample_counts(QuantumCircuit(1).h(0), 0)


class TestExpectation:
    def test_diagonal_expectation_uniform(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).h(0).h(1)
        values = np.array([0.0, 1.0, 2.0, 3.0])
        assert sim.expectation_diagonal(qc, values) == pytest.approx(1.5)

    def test_diagonal_expectation_basis_state(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).x(1)  # state |10> = index 2
        values = np.array([5.0, 6.0, 7.0, 8.0])
        assert sim.expectation_diagonal(qc, values) == pytest.approx(7.0)

    def test_wrong_length_rejected(self):
        sim = StatevectorSimulator()
        with pytest.raises(ValueError, match="entries"):
            sim.expectation_diagonal(QuantumCircuit(2), np.zeros(3))
