"""Unit tests for the conventional layer-partitioning backend compiler."""

import pytest

from repro.circuits import QuantumCircuit
from repro.compiler.backend import ConventionalBackend
from repro.compiler.mapping import Mapping
from repro.hardware import linear_device, ring_device


class TestBasicCompilation:
    def test_adjacent_gates_pass_through(self):
        g = linear_device(3)
        backend = ConventionalBackend(g)
        qc = QuantumCircuit(3).cnot(0, 1).cnot(1, 2)
        result = backend.compile(qc, Mapping.trivial(3, 3))
        assert result.swap_count == 0
        assert [i.name for i in result.circuit] == ["cnot", "cnot"]

    def test_distant_gate_gets_swaps(self):
        g = linear_device(4)
        backend = ConventionalBackend(g)
        qc = QuantumCircuit(4).cnot(0, 3)
        result = backend.compile(qc, Mapping.trivial(4, 4))
        assert result.swap_count == 2
        result.validate()

    def test_single_qubit_gates_remap(self):
        g = linear_device(3)
        backend = ConventionalBackend(g)
        mapping = Mapping({0: 2, 1: 0, 2: 1}, 3)
        qc = QuantumCircuit(3).h(0).rx(0.5, 1)
        result = backend.compile(qc, mapping)
        assert result.circuit[0].qubits == (2,)
        assert result.circuit[1].qubits == (0,)

    def test_measure_remaps_to_final_position(self):
        g = linear_device(4)
        backend = ConventionalBackend(g)
        qc = QuantumCircuit(4).cnot(0, 3).measure(0).measure(3)
        result = backend.compile(qc, Mapping.trivial(4, 4))
        measures = [i for i in result.circuit if i.name == "measure"]
        assert {m.qubits[0] for m in measures} == {
            result.final_mapping[0],
            result.final_mapping[3],
        }

    def test_input_mapping_not_mutated(self):
        g = linear_device(4)
        backend = ConventionalBackend(g)
        mapping = Mapping.trivial(4, 4)
        backend.compile(QuantumCircuit(4).cnot(0, 3), mapping)
        assert mapping.as_dict() == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_initial_and_final_mappings_recorded(self):
        g = linear_device(4)
        backend = ConventionalBackend(g)
        result = backend.compile(
            QuantumCircuit(4).cnot(0, 3), Mapping.trivial(4, 4)
        )
        assert result.initial_mapping == {0: 0, 1: 1, 2: 2, 3: 3}
        assert result.initial_mapping != result.final_mapping

    def test_directives_dropped(self):
        g = linear_device(2)
        backend = ConventionalBackend(g)
        result = backend.compile(
            QuantumCircuit(2).h(0).barrier().cnot(0, 1), Mapping.trivial(2, 2)
        )
        assert all(i.name != "barrier" for i in result.circuit)


class TestCompiledCircuitMetrics:
    def test_native_lowering(self):
        g = linear_device(2)
        backend = ConventionalBackend(g)
        qc = QuantumCircuit(2).h(0).cphase(0.3, 0, 1)
        result = backend.compile(qc, Mapping.trivial(2, 2))
        native = result.native()
        assert native.count_ops() == {"u2": 1, "cnot": 2, "u1": 1}
        assert result.gate_count() == 4
        assert result.depth() == native.depth()

    def test_validate_catches_violations(self):
        g = linear_device(3)
        backend = ConventionalBackend(g)
        result = backend.compile(
            QuantumCircuit(3).cnot(0, 1), Mapping.trivial(3, 3)
        )
        # Corrupt the circuit to check validate() actually fires.
        result.circuit.cnot(0, 2)
        with pytest.raises(AssertionError, match="violates"):
            result.validate()


class TestContinueCompile:
    def test_stitching_matches_monolithic(self):
        """Compiling two halves with continue_compile equals compiling the
        concatenation in one shot (same layer structure)."""
        g = ring_device(6)
        backend = ConventionalBackend(g)
        first = QuantumCircuit(6).cphase(0.2, 0, 3)
        second = QuantumCircuit(6).cphase(0.2, 1, 4)
        whole = QuantumCircuit(6).cphase(0.2, 0, 3).cphase(0.2, 1, 4)

        mono = backend.compile(whole, Mapping.trivial(6, 6))

        mapping = Mapping.trivial(6, 6)
        out = QuantumCircuit(6)
        swaps = backend.continue_compile(first, mapping, out)
        swaps += backend.continue_compile(second, mapping, out)
        assert swaps == mono.swap_count
        assert out.instructions == mono.circuit.instructions
        assert mapping.as_dict() == mono.final_mapping

    def test_continue_compile_mutates_mapping(self):
        g = linear_device(4)
        backend = ConventionalBackend(g)
        mapping = Mapping.trivial(4, 4)
        out = QuantumCircuit(4)
        backend.continue_compile(QuantumCircuit(4).cnot(0, 3), mapping, out)
        assert mapping.as_dict() != {0: 0, 1: 1, 2: 2, 3: 3}


class TestWeightedBackend:
    def test_distance_matrix_steers_backend_routing(self):
        from repro.hardware import CouplingGraph

        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        dist = g.weighted_distance_matrix(
            {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (0, 3): 50.0}
        )
        backend = ConventionalBackend(g, distance_matrix=dist)
        result = backend.compile(
            QuantumCircuit(4).cnot(0, 2), Mapping.trivial(4, 4)
        )
        swap_edges = {
            tuple(sorted(i.qubits)) for i in result.circuit if i.name == "swap"
        }
        assert (0, 3) not in swap_edges
