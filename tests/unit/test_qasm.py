"""Unit tests for OpenQASM 2.0 export/import."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, decompose_to_basis
from repro.circuits.qasm import QASMError, dumps, loads
from repro.sim import StatevectorSimulator


def _full_circuit():
    qc = QuantumCircuit(3)
    qc.h(0).x(1).y(2).z(0).s(1).sdg(2).t(0)
    qc.rx(0.3, 0).ry(-0.4, 1).rz(1.2, 2)
    qc.u1(0.1, 0).u2(0.2, 0.3, 1).u3(0.4, 0.5, 0.6, 2)
    qc.cnot(0, 1).cz(1, 2).swap(0, 2).cphase(0.7, 0, 1).cu1(0.8, 1, 2)
    qc.barrier().measure_all()
    return qc


class TestDumps:
    def test_header_and_registers(self):
        text = dumps(QuantumCircuit(4).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[4];" in text
        assert "creg c[4];" in text

    def test_gate_name_mapping(self):
        text = dumps(QuantumCircuit(2).cnot(0, 1).cphase(0.5, 0, 1))
        assert "cx q[0],q[1];" in text
        assert "rzz(0.5) q[0],q[1];" in text

    def test_measure_syntax(self):
        text = dumps(QuantumCircuit(2).measure(1))
        assert "measure q[1] -> c[1];" in text

    def test_barrier(self):
        text = dumps(QuantumCircuit(2).barrier())
        assert "barrier q[0], q[1];" in text

    def test_params_are_full_precision(self):
        theta = 0.12345678901234567
        text = dumps(QuantumCircuit(1).rx(theta, 0))
        assert repr(theta) in text


class TestLoads:
    def test_round_trip_instructions(self):
        qc = _full_circuit()
        parsed = loads(dumps(qc))
        assert parsed.num_qubits == qc.num_qubits
        assert parsed.instructions == qc.instructions

    def test_round_trip_preserves_state(self):
        qc = _full_circuit().only_unitary()
        sim = StatevectorSimulator()
        np.testing.assert_allclose(
            sim.run(qc), sim.run(loads(dumps(qc))), atol=1e-12
        )

    def test_pi_expressions(self):
        text = (
            "OPENQASM 2.0; include \"qelib1.inc\";\n"
            "qreg q[1]; creg c[1];\n"
            "rx(pi/2) q[0]; u1(-pi) q[0];"
        )
        parsed = loads(text)
        assert parsed[0].params[0] == pytest.approx(math.pi / 2)
        assert parsed[1].params[0] == pytest.approx(-math.pi)

    def test_comments_stripped(self):
        text = (
            "OPENQASM 2.0; // header\n"
            "qreg q[1];\n"
            "h q[0]; // a hadamard\n"
        )
        parsed = loads(text)
        assert parsed[0].name == "h"

    def test_missing_header_rejected(self):
        with pytest.raises(QASMError, match="header"):
            loads("qreg q[2]; h q[0];")

    def test_unsupported_gate_rejected(self):
        with pytest.raises(QASMError, match="unsupported gate"):
            loads("OPENQASM 2.0; qreg q[3]; ccx q[0],q[1],q[2];")

    def test_bad_parameter_count(self):
        with pytest.raises(QASMError, match="parameter"):
            loads("OPENQASM 2.0; qreg q[1]; rx q[0];")

    def test_statement_before_qreg(self):
        with pytest.raises(QASMError, match="before qreg"):
            loads("OPENQASM 2.0; h q[0];")

    def test_unknown_register(self):
        with pytest.raises(QASMError, match="bad qubit argument"):
            loads("OPENQASM 2.0; qreg q[2]; h r[0];")

    def test_evil_parameter_expression_rejected(self):
        with pytest.raises(QASMError, match="unsupported parameter"):
            loads('OPENQASM 2.0; qreg q[1]; rx(__import__) q[0];')

    def test_no_qreg(self):
        with pytest.raises(QASMError, match="qreg"):
            loads("OPENQASM 2.0;")


class TestCompiledCircuitExport:
    def test_compiled_qaoa_round_trips(self, rng):
        from repro.compiler import compile_with_method
        from repro.hardware import ring_device
        from repro.qaoa import MaxCutProblem

        problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        program = problem.to_program([0.5], [0.3])
        compiled = compile_with_method(
            program, ring_device(6), "ic", rng=rng
        )
        parsed = loads(dumps(compiled.circuit))
        assert parsed.instructions == compiled.circuit.instructions

    def test_native_circuit_round_trips(self, rng):
        qc = decompose_to_basis(
            QuantumCircuit(3).h(0).cphase(0.4, 0, 1).swap(1, 2)
        )
        parsed = loads(dumps(qc))
        assert parsed.instructions == qc.instructions
