"""Unit tests for the ASCII circuit drawer."""

from repro.circuits import QuantumCircuit, draw_circuit


class TestDraw:
    def test_one_row_per_qubit(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1)
        text = draw_circuit(qc)
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) == 3
        assert lines[0].startswith("q0")

    def test_gate_labels_present(self):
        qc = QuantumCircuit(2).h(0).rx(0.5, 1).cphase(0.3, 0, 1)
        text = draw_circuit(qc)
        assert "h" in text
        assert "rx(0.50)" in text
        assert "cphase(0.30)" in text

    def test_two_qubit_gate_marks_first_qubit(self):
        qc = QuantumCircuit(2).cnot(0, 1)
        text = draw_circuit(qc)
        q0_line = text.splitlines()[0]
        assert "*" in q0_line

    def test_layers_visible_as_columns(self):
        qc = QuantumCircuit(1).h(0).h(0).h(0)
        text = draw_circuit(qc)
        assert text.splitlines()[0].count("h") == 3

    def test_wrapping_long_circuits(self):
        qc = QuantumCircuit(2)
        for _ in range(60):
            qc.h(0).h(1)
        text = draw_circuit(qc, max_width=40)
        lines = [l for l in text.splitlines() if l.strip()]
        assert len(lines) > 2  # wrapped into banks

    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        assert text == "" or "q0" in text

    def test_method_delegation(self):
        qc = QuantumCircuit(2).h(0)
        assert qc.draw() == draw_circuit(qc)
