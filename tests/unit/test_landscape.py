"""Unit tests for QAOA landscape utilities."""

import numpy as np
import pytest

from repro.hardware import ring_device, uniform_calibration
from repro.qaoa.landscape import (
    expectation_grid,
    landscape_statistics,
    noisy_expectation_grid,
)
from repro.qaoa.problems import MaxCutProblem
from repro.sim import NoiseModel, NoisySimulator


@pytest.fixture
def triangle():
    return MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])


class TestExpectationGrid:
    def test_shape(self, triangle):
        grid = expectation_grid(triangle, resolution=8)
        assert grid.values.shape == (8, 8)
        assert len(grid.gammas) == len(grid.betas) == 8

    def test_analytic_and_simulated_agree(self, triangle):
        a = expectation_grid(triangle, resolution=6, use_analytic=True)
        b = expectation_grid(triangle, resolution=6, use_analytic=False)
        np.testing.assert_allclose(a.values, b.values, atol=1e-9)

    def test_values_bounded(self, triangle):
        grid = expectation_grid(triangle, resolution=10)
        assert grid.values.min() >= -1e-9
        assert grid.values.max() <= len(triangle.edges) + 1e-9

    def test_best_is_grid_argmax(self, triangle):
        grid = expectation_grid(triangle, resolution=10)
        g, b, v = grid.best()
        assert v == pytest.approx(grid.values.max())
        assert g in grid.gammas and b in grid.betas

    def test_zero_angles_give_half_edges(self, triangle):
        grid = expectation_grid(triangle, resolution=8)
        # gamma = beta = 0 is on the grid (linspace includes 0 when
        # endpoint=False and resolution divides the range symmetrically).
        i = np.argmin(np.abs(grid.gammas))
        j = np.argmin(np.abs(grid.betas))
        assert grid.values[i, j] == pytest.approx(1.5, abs=1e-6)

    def test_resolution_validated(self, triangle):
        with pytest.raises(ValueError, match="resolution"):
            expectation_grid(triangle, resolution=1)

    def test_weighted_problem_uses_simulator(self):
        weighted = MaxCutProblem(3, [(0, 1, 2.0), (1, 2, 0.5)])
        grid = expectation_grid(weighted, resolution=4)
        assert grid.values.max() <= weighted.total_weight() + 1e-9


class TestNoisyGrid:
    def test_noise_flattens_the_landscape(self, triangle):
        """The Section I claim: noise reduces landscape contrast."""
        ideal_grid = expectation_grid(triangle, resolution=6)
        cal = uniform_calibration(ring_device(4), cnot_error=0.25)
        noisy = NoisySimulator(
            NoiseModel.from_calibration(cal), trajectories=32
        )
        noisy_grid = noisy_expectation_grid(
            triangle,
            ring_device(4),
            "ic",
            noisy,
            resolution=6,
            shots=1024,
            rng=np.random.default_rng(0),
        )
        ideal_stats = landscape_statistics(ideal_grid)
        noisy_stats = landscape_statistics(noisy_grid)
        assert noisy_stats.contrast < ideal_stats.contrast

    def test_noiseless_sampled_grid_tracks_exact(self, triangle):
        cal = uniform_calibration(ring_device(4), cnot_error=0.0)
        noiseless = NoisySimulator(
            NoiseModel.from_calibration(cal), trajectories=2
        )
        sampled = noisy_expectation_grid(
            triangle,
            ring_device(4),
            "ic",
            noiseless,
            resolution=4,
            shots=4096,
            rng=np.random.default_rng(1),
        )
        exact = expectation_grid(triangle, resolution=4)
        np.testing.assert_allclose(sampled.values, exact.values, atol=0.15)


class TestStatistics:
    def test_fields(self):
        grid = expectation_grid(
            MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)]), resolution=6
        )
        stats = landscape_statistics(grid)
        assert stats.contrast == pytest.approx(
            stats.max_value - stats.min_value
        )
        assert stats.min_value <= stats.mean <= stats.max_value
        assert stats.peak_to_mean >= 0
