"""Unit tests for the content-addressed artifact store (repro.store)."""

import json
import os

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    FingerprintRegistry,
    ShardedDiskTier,
    SharedArrayTier,
    all_registries,
    diff_store_stats,
    flatten_store_events,
    registry_capacity,
    shard_for,
    store_stats,
)
from repro.store.shm import segment_name


# ----------------------------------------------------------------------
# FingerprintRegistry
# ----------------------------------------------------------------------
class TestFingerprintRegistry:
    def test_intern_builds_once(self):
        reg = FingerprintRegistry("t-intern", capacity=4)
        calls = []

        def factory():
            calls.append(1)
            return object()

        first, hit1 = reg.intern("k", factory)
        second, hit2 = reg.intern("k", factory)
        assert first is second
        assert (hit1, hit2) == (False, True)
        assert len(calls) == 1

    def test_lru_eviction_bound(self):
        """The eviction-bound regression: size never exceeds capacity."""
        reg = FingerprintRegistry("t-bound", capacity=3)
        for i in range(10):
            reg.put(f"k{i}", i)
            assert len(reg) <= 3
        stats = reg.stats()
        assert stats["size"] == 3
        assert stats["evictions"] == 7
        # LRU order: the three most recent survive.
        assert "k9" in reg and "k8" in reg and "k7" in reg
        assert "k0" not in reg

    def test_get_promotes(self):
        reg = FingerprintRegistry("t-promote", capacity=2)
        reg.put("a", 1)
        reg.put("b", 2)
        assert reg.get("a") == 1  # promote a over b
        reg.put("c", 3)
        assert "a" in reg
        assert "b" not in reg

    def test_peek_is_telemetry_neutral(self):
        reg = FingerprintRegistry("t-peek", capacity=2)
        reg.put("a", 1)
        reg.peek("a")
        reg.peek("absent")
        stats = reg.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_set_capacity_evicts_immediately(self):
        reg = FingerprintRegistry("t-recap", capacity=4)
        for i in range(4):
            reg.put(f"k{i}", i)
        reg.set_capacity(2)
        assert len(reg) == 2
        assert reg.capacity == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FingerprintRegistry("t-bad", capacity=0)

    def test_clear_resets_counters(self):
        reg = FingerprintRegistry("t-clear", capacity=2)
        reg.put("a", 1)
        reg.get("a")
        reg.get("absent")
        reg.clear()
        assert len(reg) == 0
        assert reg.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 0,
            "capacity": 2,
        }

    def test_self_registers_for_aggregate_stats(self):
        reg = FingerprintRegistry("t-registered", capacity=2)
        assert all_registries()["t-registered"] is reg

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CAP", "7")
        reg = FingerprintRegistry(
            "t-env", env_var="REPRO_TEST_CAP", default_capacity=256
        )
        assert reg.capacity == 7

    def test_env_capacity_helper(self, monkeypatch):
        assert registry_capacity(None, 5) == 5
        monkeypatch.setenv("REPRO_TEST_CAP", "")
        assert registry_capacity("REPRO_TEST_CAP", 5) == 5
        monkeypatch.setenv("REPRO_TEST_CAP", "12")
        assert registry_capacity("REPRO_TEST_CAP", 5) == 12
        monkeypatch.setenv("REPRO_TEST_CAP", "junk")
        with pytest.raises(ValueError):
            registry_capacity("REPRO_TEST_CAP", 5)
        monkeypatch.setenv("REPRO_TEST_CAP", "0")
        with pytest.raises(ValueError):
            registry_capacity("REPRO_TEST_CAP", 5)

    def test_explicit_capacity_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CAP", "7")
        reg = FingerprintRegistry(
            "t-explicit", capacity=3, env_var="REPRO_TEST_CAP"
        )
        assert reg.capacity == 3


class TestRegistryCapacityKnobs:
    """The configurable-capacity satellite: the live registries honour
    their environment variables and the runtime setter."""

    def test_target_registry_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY_CAPACITY", "11")
        reg = FingerprintRegistry(
            "t-target-env",
            env_var="REPRO_REGISTRY_CAPACITY",
            default_capacity=256,
        )
        assert reg.capacity == 11

    def test_set_registry_capacity_setter(self):
        from repro.hardware.target import (
            _COUPLINGS,
            _TARGETS,
            set_registry_capacity,
        )

        before_t = _TARGETS.capacity
        before_c = _COUPLINGS.capacity
        try:
            set_registry_capacity(33)
            assert _TARGETS.capacity == 33
            assert _COUPLINGS.capacity == 33
        finally:
            _TARGETS.set_capacity(before_t)
            _COUPLINGS.set_capacity(before_c)


# ----------------------------------------------------------------------
# SharedArrayTier
# ----------------------------------------------------------------------
@pytest.fixture
def tier():
    t = SharedArrayTier(max_segments=8, max_bytes=1 << 20)
    yield t
    t.cleanup()


class TestSharedArrayTier:
    def test_publish_then_resolve_roundtrip(self, tier):
        arrays = {
            "m": np.arange(12, dtype=np.float64).reshape(3, 4),
            "v": np.array([1, 2, 3], dtype=np.int64),
        }
        assert tier.publish("k1", arrays)
        out = tier.resolve("k1")
        assert set(out) == {"m", "v"}
        np.testing.assert_array_equal(out["m"], arrays["m"])
        np.testing.assert_array_equal(out["v"], arrays["v"])
        assert not out["m"].flags.writeable

    def test_resolve_missing_counts_miss(self, tier):
        assert tier.resolve("absent") is None
        assert tier.stats()["misses"] == 1

    def test_repeat_resolve_is_cached_hit(self, tier):
        tier.publish("k", {"a": np.zeros(4)})
        tier.resolve("k")
        hits_before = tier.stats()["hits"]
        tier.resolve("k")
        assert tier.stats()["hits"] == hits_before + 1

    def test_cross_tier_attach(self, tier):
        """A second tier instance (stand-in for another process) resolves
        the block the first one published, zero-copy."""
        matrix = np.arange(16, dtype=np.float64).reshape(4, 4)
        assert tier.publish("shared", {"hop": matrix})
        other = SharedArrayTier(max_segments=8, max_bytes=1 << 20)
        try:
            out = other.resolve("shared")
            assert out is not None
            np.testing.assert_array_equal(out["hop"], matrix)
            assert other.stats()["attach_hits"] == 1
        finally:
            other.cleanup()

    def test_disabled_tier_never_publishes(self):
        t = SharedArrayTier(enabled=False)
        assert not t.publish("k", {"a": np.zeros(4)})
        assert t.resolve("k") is None
        assert t.stats()["segments"] == 0

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        assert not SharedArrayTier().enabled

    def test_segment_cap_counts_skip(self):
        t = SharedArrayTier(max_segments=1, max_bytes=1 << 20)
        try:
            assert t.publish("a", {"x": np.zeros(4)})
            assert not t.publish("b", {"x": np.zeros(4)})
            assert t.stats()["publish_skips"] == 1
        finally:
            t.cleanup()

    def test_byte_cap_counts_skip(self):
        t = SharedArrayTier(max_segments=8, max_bytes=64)
        try:
            assert not t.publish("big", {"x": np.zeros(1024)})
            assert t.stats()["publish_skips"] == 1
        finally:
            t.cleanup()

    def test_torn_block_treated_as_absent(self, tier):
        """A segment without the magic seal (publisher died mid-write)
        reads as a miss, counted as torn."""
        from multiprocessing import shared_memory

        name = segment_name("torn-key")
        shm = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            shm.buf[:8] = b"XXXXXXXX"  # wrong seal
            assert tier.resolve("torn-key") is None
            assert tier.stats()["torn"] == 1
        finally:
            shm.close()
            shm.unlink()

    def test_cleanup_unlinks_owned_segments(self):
        t = SharedArrayTier(max_segments=8, max_bytes=1 << 20)
        t.publish("gone", {"x": np.zeros(8)})
        name = segment_name("gone")
        assert os.path.exists(f"/dev/shm/{name}")
        t.cleanup()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_publish_race_resolves_existing(self, tier):
        matrix = np.ones((2, 2))
        assert tier.publish("race", {"m": matrix})
        other = SharedArrayTier(max_segments=8, max_bytes=1 << 20)
        try:
            # Same key: create fails with FileExistsError inside publish
            # and the other tier attaches to the winner's block.
            assert other.publish("race", {"m": matrix})
            out = other.resolve("race")
            np.testing.assert_array_equal(out["m"], matrix)
        finally:
            other.cleanup()


# ----------------------------------------------------------------------
# ShardedDiskTier
# ----------------------------------------------------------------------
class TestShardedDiskTier:
    def test_shard_for_is_stable_and_path_safe(self):
        assert shard_for("k") == shard_for("k")
        assert len(shard_for("any/key with spaces")) == 2
        assert all(c in "0123456789abcdef" for c in shard_for("k"))

    def test_put_get_roundtrip(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        tier.put("k", {"v": 1})
        lookup = tier.get("k")
        assert lookup.hit
        assert lookup.payload == {"v": 1}
        assert (tmp_path / shard_for("k") / "k.json").exists()

    def test_text_is_byte_identical(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        text = '{"v":1,  "weird":   "spacing"}'
        tier.put_text("k", text)
        assert tier.get("k").text == text

    def test_legacy_flat_entry_migrates_on_hit(self, tmp_path):
        (tmp_path / "old.json").write_text(json.dumps({"v": "legacy"}))
        tier = ShardedDiskTier(tmp_path)
        lookup = tier.get("old")
        assert lookup.hit and lookup.migrated
        assert not (tmp_path / "old.json").exists()
        assert (tmp_path / shard_for("old") / "old.json").exists()
        assert tier.stats()["migrations"] == 1
        # Second read comes straight from the shard.
        assert tier.get("old").payload == {"v": "legacy"}

    def test_corrupt_legacy_quarantined_in_place(self, tmp_path):
        (tmp_path / "bad.json").write_text("{torn")
        tier = ShardedDiskTier(tmp_path)
        lookup = tier.get("bad")
        assert lookup.quarantined and not lookup.hit
        assert (tmp_path / "bad.json.corrupt").exists()
        assert not (tmp_path / shard_for("bad")).exists()

    def test_corrupt_shard_entry_quarantined_and_counted(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        tier.put("k", {"v": 1})
        tier.entry_path("k").write_text("{torn")
        assert tier.get("k").quarantined
        shard = shard_for("k")
        assert tier.shard_stats()[shard].quarantines == 1
        assert (tmp_path / shard / "k.json.corrupt").exists()

    def test_scans_are_o_touched_shards(self, tmp_path):
        """entries() walks only shard dirs that exist (plus the legacy
        root), not all 256 — the shard-aware-scan satellite."""
        tier = ShardedDiskTier(tmp_path)
        keys = ["a", "b", "c"]
        for k in keys:
            tier.put(k, {"k": k})
        distinct = len({shard_for(k) for k in keys})
        before = tier.stats()["shards_scanned"]
        assert tier.entries() == 3
        walked = tier.stats()["shards_scanned"] - before
        assert walked == distinct + 1  # + the legacy root

    def test_byte_budget_evicts_oldest(self, tmp_path):
        tier = ShardedDiskTier(tmp_path, max_bytes=150)
        payload = {"pad": "x" * 50}
        tier.put("first", payload)
        os.utime(
            tier.entry_path("first"), (1, 1)
        )  # make "first" unambiguously oldest
        tier.put("second", payload)
        tier.put("third", payload)
        assert tier.bytes_used(refresh=True) <= 150
        assert not tier.contains("first")
        assert sum(s.evictions for s in tier.shard_stats().values()) >= 1

    def test_prune_stale_predicate(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        tier.put("keep", {"version": 2})
        tier.put("drop", {"version": 1})
        removed = tier.prune(lambda p: p.get("version") == 1)
        assert removed == 1
        assert tier.contains("keep")
        assert not tier.contains("drop")

    def test_prune_delete_corrupt_mode(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        tier.put("bad", {"v": 1})
        tier.entry_path("bad").write_text("{torn")
        removed = tier.prune(lambda p: False, quarantine_corrupt=False)
        assert removed == 1
        assert not tier.entry_path("bad").exists()
        assert not tier.entry_path("bad").with_suffix(
            ".json.corrupt"
        ).exists()

    def test_sweep_debris(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        tier.put("k", {"v": 1})
        (tmp_path / "orphan.1.2.tmp").write_text("partial")
        (tmp_path / shard_for("k") / "x.json.corrupt").write_text("{")
        assert tier.sweep_debris() == 2
        assert tier.entries() == 1

    def test_clear(self, tmp_path):
        tier = ShardedDiskTier(tmp_path)
        for k in ("a", "b"):
            tier.put(k, {"k": k})
        assert tier.clear() == 2
        assert tier.entries() == 0
        assert tier.bytes_used() == 0

    def test_delete_covers_both_layouts(self, tmp_path):
        (tmp_path / "legacy.json").write_text("{}")
        tier = ShardedDiskTier(tmp_path)
        tier.put("sharded", {})
        assert tier.delete("legacy")
        assert tier.delete("sharded")
        assert not tier.delete("absent")


# ----------------------------------------------------------------------
# ArtifactStore facade + stats plumbing
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_intern_delegates_to_registry(self):
        store = ArtifactStore(
            "t-store", registry=FingerprintRegistry("t-store", capacity=4)
        )
        value, hit = store.intern("k", lambda: "v")
        assert (value, hit) == ("v", False)
        assert store.intern("k", lambda: "other") == ("v", True)

    def test_arrays_round_trip_through_both_tiers(self):
        shared = SharedArrayTier(max_segments=4, max_bytes=1 << 20)
        store = ArtifactStore(
            "t-arrays",
            registry=FingerprintRegistry("t-arrays", capacity=4),
            shared=shared,
        )
        try:
            matrix = np.eye(3)
            store.put_arrays("m", {"m": matrix})
            out = store.get_arrays("m")
            np.testing.assert_array_equal(out["m"], matrix)
        finally:
            shared.cleanup()

    def test_disk_entries(self, tmp_path):
        store = ArtifactStore(
            "t-disk",
            registry=FingerprintRegistry("t-disk", capacity=4),
            disk=ShardedDiskTier(tmp_path),
        )
        assert store.get_entry("k") is None
        store.put_entry("k", {"v": 1})
        assert store.get_entry("k") == {"v": 1}
        assert "disk" in store.stats()

    def test_store_stats_shape(self):
        snap = store_stats()
        assert "registries" in snap and "shm" in snap
        for stats in snap["registries"].values():
            assert {"hits", "misses", "evictions", "size"} <= set(stats)


class TestStatsDiffing:
    def test_counters_diff_and_gauges_take_after(self):
        before = {"shm": {"hits": 2, "bytes": 100, "segments": 1}}
        after = {"shm": {"hits": 5, "bytes": 50, "segments": 3}}
        delta = diff_store_stats(before, after)
        assert delta["shm"]["hits"] == 3
        assert delta["shm"]["bytes"] == 50  # gauge: after-value
        assert delta["shm"]["segments"] == 3

    def test_counter_reset_clamps_at_zero(self):
        delta = diff_store_stats(
            {"shm": {"hits": 10}}, {"shm": {"hits": 2}}
        )
        assert delta["shm"]["hits"] == 0

    def test_new_sections_diff_against_zero(self):
        delta = diff_store_stats({}, {"registries": {"r": {"hits": 4}}})
        assert delta["registries"]["r"]["hits"] == 4

    def test_flatten_store_events_sums_and_drops_zeros(self):
        before = {
            "registries": {
                "a": {"hits": 1, "misses": 0, "evictions": 0},
                "b": {"hits": 2, "misses": 1, "evictions": 0},
            },
            "shm": {"hits": 1, "attach_hits": 0, "misses": 0,
                    "publishes": 0, "publish_skips": 0, "torn": 0},
        }
        after = {
            "registries": {
                "a": {"hits": 4, "misses": 0, "evictions": 0},
                "b": {"hits": 2, "misses": 3, "evictions": 0},
            },
            "shm": {"hits": 2, "attach_hits": 1, "misses": 0,
                    "publishes": 1, "publish_skips": 0, "torn": 0},
        }
        events = flatten_store_events(before, after)
        assert events["registry_hits"] == 3
        assert events["registry_misses"] == 2
        assert events["shm_hits"] == 2  # hits + attach_hits deltas
        assert events["shm_publishes"] == 1
        assert "shm_torn" not in events  # zeros dropped
        assert "registry_evictions" not in events
