"""Unit tests for the public method registry.

The registry is the single source of truth for method-name resolution:
``register_method`` / ``get_method`` / ``available_methods``, the
deprecation shim over ``METHOD_PRESETS`` mutation, and the shared
unknown-method error used by every entry point.
"""

import warnings

import pytest

from repro.compiler import (
    METHOD_PRESETS,
    PipelineSpec,
    available_methods,
    get_method,
    register_method,
    unregister_method,
)
from repro.compiler.registry import unknown_method_error


class TestRegistryBasics:
    def test_paper_presets_registered(self):
        names = available_methods()
        for name in (
            "naive", "greedy_v", "greedy_e", "qaim", "ip", "ic", "vic",
            "swap_network", "parity",
        ):
            assert name in names

    def test_available_methods_sorted_tuple(self):
        names = available_methods()
        assert isinstance(names, tuple)
        assert list(names) == sorted(names)

    def test_get_method_returns_spec(self):
        spec = get_method("swap_network")
        assert isinstance(spec, PipelineSpec)
        assert spec.placement == "linear"
        assert spec.ordering == "swap_network"

    def test_get_method_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown method 'nope'"):
            get_method("nope")

    def test_unknown_error_lists_options_sorted(self):
        err = unknown_method_error("nope")
        assert isinstance(err, ValueError)
        message = str(err)
        assert "options:" in message
        for name in available_methods():
            assert repr(name)[1:-1] in message


class TestRegisterUnregister:
    def test_register_roundtrip(self):
        spec = PipelineSpec(placement="linear", ordering="swap_network")
        register_method("custom_sn", spec)
        try:
            assert "custom_sn" in available_methods()
            assert get_method("custom_sn") == spec
        finally:
            unregister_method("custom_sn")
        assert "custom_sn" not in available_methods()

    def test_register_collision_needs_overwrite(self):
        register_method("custom_x", get_method("ic"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_method("custom_x", get_method("ip"))
            register_method("custom_x", get_method("ip"), overwrite=True)
            assert get_method("custom_x") == get_method("ip")
        finally:
            unregister_method("custom_x")

    def test_register_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            register_method("", get_method("ic"))
        with pytest.raises(TypeError):
            register_method("bad", {"placement": "ic"})

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            unregister_method("never_registered")


class TestPresetsCompatibilityView:
    def test_reads_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert METHOD_PRESETS["ic"].ordering == "ic"
            assert len(METHOD_PRESETS) == len(available_methods())
            assert set(METHOD_PRESETS) == set(available_methods())

    def test_mutation_warns_and_registers(self):
        spec = PipelineSpec(placement="linear", ordering="swap_network")
        with pytest.warns(DeprecationWarning, match="register_method"):
            METHOD_PRESETS["legacy_custom"] = spec
        try:
            assert get_method("legacy_custom") == spec
        finally:
            with pytest.warns(DeprecationWarning):
                del METHOD_PRESETS["legacy_custom"]
        assert "legacy_custom" not in available_methods()

    def test_view_tracks_registry(self):
        register_method("tracked", get_method("naive"))
        try:
            assert "tracked" in METHOD_PRESETS
        finally:
            unregister_method("tracked")
        assert "tracked" not in METHOD_PRESETS


class TestUnifiedErrors:
    """Every entry point reports the same unknown-method error."""

    def _expected(self):
        return str(unknown_method_error("bogus"))

    def test_api_compile(self):
        import repro

        problem = repro.MaxCutProblem(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError) as exc:
            repro.compile(
                problem,
                target="ring_8",
                method="bogus",
                gammas=[0.1],
                betas=[0.2],
            )
        assert str(exc.value) == self._expected()

    def test_compile_with_method(self):
        import numpy as np

        from repro.compiler import compile_with_method
        from repro.hardware import ring_device
        from repro.qaoa import MaxCutProblem

        program = MaxCutProblem(3, [(0, 1), (1, 2)]).to_program([0.1], [0.2])
        with pytest.raises(ValueError) as exc:
            compile_with_method(
                program, ring_device(4), "bogus", rng=np.random.default_rng(0)
            )
        assert str(exc.value) == self._expected()

    def test_job_from_dict(self):
        from repro.service.job import job_from_dict

        with pytest.raises(ValueError) as exc:
            job_from_dict(
                {
                    "program": {
                        "num_qubits": 3,
                        "edges": [[0, 1], [1, 2]],
                        "gammas": [0.1],
                        "betas": [0.2],
                    },
                    "device": "ring_8",
                    "method": "bogus",
                }
            )
        assert str(exc.value) == self._expected()

    def test_cli_compile(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["compile", "--method", "bogus", "--device", "ring_8"])
        err = capsys.readouterr().err
        assert "bogus" in err
