"""Unit tests for basis-gate lowering — matrix-level equivalence checks."""

import numpy as np
import pytest

from repro.circuits import (
    IBM_BASIS,
    QuantumCircuit,
    cphase_to_cnot,
    decompose_to_basis,
    expand_instruction,
    flip_cnot,
    swap_to_cnot,
)
from repro.circuits.gates import Instruction

from ..conftest import assert_equal_up_to_global_phase, circuit_unitary


def _unitary_of(instructions, num_qubits):
    return circuit_unitary(QuantumCircuit(num_qubits, instructions))


class TestCphaseDecomposition:
    """Figure 1(d): CPHASE = CNOT . RZ . CNOT."""

    @pytest.mark.parametrize("gamma", [0.0, 0.3, -1.2, np.pi, 2.7])
    def test_matrix_equivalence(self, gamma):
        inst = Instruction("cphase", (0, 1), (gamma,))
        direct = _unitary_of([inst], 2)
        expanded = _unitary_of(cphase_to_cnot(inst), 2)
        assert_equal_up_to_global_phase(direct, expanded)

    def test_structure(self):
        out = cphase_to_cnot(Instruction("cphase", (0, 1), (0.5,)))
        assert [i.name for i in out] == ["cnot", "rz", "cnot"]
        assert out[1].qubits == (1,)
        assert out[1].params == (0.5,)


class TestSwapDecomposition:
    def test_matrix_equivalence(self):
        inst = Instruction("swap", (0, 1))
        direct = _unitary_of([inst], 2)
        expanded = _unitary_of(swap_to_cnot(inst), 2)
        assert_equal_up_to_global_phase(direct, expanded)

    def test_three_cnots(self):
        out = swap_to_cnot(Instruction("swap", (0, 1)))
        assert [i.name for i in out] == ["cnot"] * 3


class TestSingleQubitLowering:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("y", ()),
            ("z", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("rx", (0.7,)),
            ("ry", (-0.4,)),
            ("rz", (1.3,)),
        ],
    )
    def test_matrix_equivalence_up_to_phase(self, name, params):
        inst = Instruction(name, (0,), params)
        direct = _unitary_of([inst], 1)
        expanded = _unitary_of(expand_instruction(inst), 1)
        assert_equal_up_to_global_phase(direct, expanded)

    def test_native_gates_pass_through(self):
        inst = Instruction("u3", (0,), (0.1, 0.2, 0.3))
        assert expand_instruction(inst) == [inst]


class TestTwoQubitLowering:
    @pytest.mark.parametrize("name,params", [("cz", ()), ("cu1", (0.8,))])
    def test_matrix_equivalence(self, name, params):
        inst = Instruction(name, (0, 1), params)
        direct = _unitary_of([inst], 2)
        expanded = _unitary_of(expand_instruction(inst), 2)
        assert_equal_up_to_global_phase(direct, expanded)


class TestDecomposeToBasis:
    def test_full_qaoa_circuit_lowers(self):
        qc = QuantumCircuit(3)
        qc.h(0).h(1).h(2)
        qc.cphase(0.5, 0, 1).cphase(0.5, 1, 2)
        qc.rx(0.6, 0).rx(0.6, 1).rx(0.6, 2)
        qc.measure_all()
        native = decompose_to_basis(qc)
        native.validate_basis(IBM_BASIS)

    def test_lowering_preserves_unitary(self):
        qc = QuantumCircuit(3)
        qc.h(0).cphase(0.4, 0, 1).swap(1, 2).rx(0.3, 2).cz(0, 2)
        native = decompose_to_basis(qc)
        assert_equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(native)
        )

    def test_already_native_is_unchanged(self):
        qc = QuantumCircuit(2).u1(0.3, 0).cnot(0, 1)
        native = decompose_to_basis(qc)
        assert native.instructions == qc.instructions

    def test_cphase_expands_to_two_cnots(self):
        qc = QuantumCircuit(2).cphase(0.4, 0, 1)
        assert decompose_to_basis(qc).count_ops() == {"cnot": 2, "u1": 1}

    def test_swap_expands_to_three_cnots(self):
        qc = QuantumCircuit(2).swap(0, 1)
        assert decompose_to_basis(qc).count_ops() == {"cnot": 3}

    def test_custom_basis(self):
        qc = QuantumCircuit(2).h(0)
        out = decompose_to_basis(qc, basis={"h", "cnot"})
        assert out.count_ops() == {"h": 1}

    def test_unknown_gate_raises(self):
        qc = QuantumCircuit(2).cphase(0.1, 0, 1)
        with pytest.raises(ValueError):
            decompose_to_basis(qc, basis={"u3"})  # cnot not allowed


class TestFlipCnot:
    def test_matrix_equivalence(self):
        inst = Instruction("cnot", (0, 1))
        flipped = flip_cnot(inst)
        assert flipped[2].qubits == (1, 0)
        assert_equal_up_to_global_phase(
            _unitary_of([inst], 2), _unitary_of(flipped, 2)
        )

    def test_rejects_non_cnot(self):
        with pytest.raises(ValueError, match="expects a cnot"):
            flip_cnot(Instruction("cz", (0, 1)))
