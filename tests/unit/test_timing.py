"""Unit tests for the gate-duration model and execution-time estimate."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Instruction
from repro.circuits.timing import (
    DurationModel,
    decoherence_factor,
    execution_time,
    schedule,
)


class TestDurationModel:
    def test_defaults(self):
        model = DurationModel()
        assert model.duration(Instruction("u3", (0,), (0.1, 0.2, 0.3))) == 35.0
        assert model.duration(Instruction("cnot", (0, 1))) == 300.0
        assert model.duration(Instruction("measure", (0,))) == 3500.0

    def test_virtual_gates_are_free(self):
        model = DurationModel()
        for name, params in [("u1", (0.5,)), ("rz", (0.5,)), ("z", ())]:
            assert model.duration(Instruction(name, (0,), params)) == 0.0

    def test_swap_defaults_to_three_cnots(self):
        model = DurationModel()
        assert model.duration(Instruction("swap", (0, 1))) == 900.0

    def test_swap_override(self):
        model = DurationModel(swap=450.0)
        assert model.duration(Instruction("swap", (0, 1))) == 450.0

    def test_barrier_is_free(self):
        model = DurationModel()
        assert model.duration(Instruction("barrier", (0, 1))) == 0.0


class TestSchedule:
    def test_serial_chain(self):
        qc = QuantumCircuit(1).h(0).h(0)
        gates = schedule(qc, DurationModel(single_qubit=10))
        assert gates[0].start == 0.0 and gates[0].end == 10.0
        assert gates[1].start == 10.0 and gates[1].end == 20.0

    def test_parallel_gates_overlap(self):
        qc = QuantumCircuit(2).h(0).h(1)
        gates = schedule(qc, DurationModel(single_qubit=10))
        assert gates[0].start == gates[1].start == 0.0

    def test_two_qubit_gate_waits_for_both(self):
        model = DurationModel(single_qubit=10, two_qubit=100)
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        gates = schedule(qc, model)
        assert gates[1].start == 10.0
        assert gates[1].end == 110.0

    def test_mixed_durations_compact_schedule(self):
        # A virtual u1 takes no time, so the subsequent gate starts at the
        # same instant.
        model = DurationModel(single_qubit=10)
        qc = QuantumCircuit(1).u1(0.3, 0).h(0)
        gates = schedule(qc, model)
        assert gates[1].start == 0.0

    def test_barrier_synchronises(self):
        model = DurationModel(single_qubit=10)
        qc = QuantumCircuit(2).h(0).barrier().h(1)
        gates = schedule(qc, model)
        # h(1) must wait for the barrier, which waits for h(0).
        assert gates[1].start == 10.0


class TestExecutionTime:
    def test_empty_circuit(self):
        assert execution_time(QuantumCircuit(2)) == 0.0

    def test_makespan(self):
        model = DurationModel(single_qubit=10, two_qubit=100, measure=1000)
        qc = QuantumCircuit(2).h(0).cnot(0, 1).measure_all()
        assert execution_time(qc, model) == 10 + 100 + 1000

    def test_depth_reduction_reduces_time(self):
        """The paper's motivation made quantitative: the re-ordered Fig-1
        circuit executes faster than the serialised one."""
        def qaoa(order):
            qc = QuantumCircuit(4)
            for q in range(4):
                qc.h(q)
            for a, b in order:
                qc.cphase(0.5, a, b)
            for q in range(4):
                qc.rx(0.6, q)
            return qc

        bad = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)]
        good = [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)]
        assert execution_time(qaoa(good)) < execution_time(qaoa(bad))


class TestDecoherenceFactor:
    def test_empty_circuit_survives(self):
        assert decoherence_factor(QuantumCircuit(2)) == 1.0

    def test_bounded(self):
        qc = QuantumCircuit(2).h(0).cnot(0, 1).measure_all()
        factor = decoherence_factor(qc)
        assert 0.0 < factor < 1.0

    def test_longer_circuits_decohere_more(self):
        short = QuantumCircuit(2).cnot(0, 1)
        long = QuantumCircuit(2)
        for _ in range(10):
            long.cnot(0, 1)
        assert decoherence_factor(long) < decoherence_factor(short)

    def test_larger_t2_helps(self):
        qc = QuantumCircuit(2).cnot(0, 1).cnot(0, 1)
        assert decoherence_factor(qc, t2_ns=1e6) > decoherence_factor(
            qc, t2_ns=1e4
        )

    def test_invalid_t2(self):
        with pytest.raises(ValueError, match="positive"):
            decoherence_factor(QuantumCircuit(1).h(0), t2_ns=0.0)

    def test_exposure_is_per_active_qubit(self):
        # Idle qubits (never touched) contribute nothing.
        model = DurationModel(single_qubit=100.0)
        small = QuantumCircuit(2).h(0)
        big_register = QuantumCircuit(10).h(0)
        assert decoherence_factor(small, model=model) == pytest.approx(
            decoherence_factor(big_register, model=model)
        )
