"""Unit tests for the batch engine: caching, retries, timeouts, pooling."""

import time

import pytest

from repro.compiler.serialize import FORMAT_VERSION
from repro.qaoa import MaxCutProblem
from repro.service import (
    BatchEngine,
    CompileJob,
    ResultCache,
    execute_job,
    run_batch,
)


def _program(n=5):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return MaxCutProblem(n, edges).to_program([0.7], [0.35])


def _jobs(count=3, **kwargs):
    program = _program()
    defaults = dict(program=program, device="ibmq_20_tokyo", method="ic")
    defaults.update(kwargs)
    return [CompileJob(seed=i, **defaults) for i in range(count)]


# Module-level so they pickle into worker processes.
def _sleepy_execute(job):
    time.sleep(2.0)
    return execute_job(job)


def _crashy_execute(job):
    raise RuntimeError("worker exploded")


class _FlakyExecute:
    """Fails the first ``failures`` calls, then delegates (serial only)."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, job):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("transient fault")
        return execute_job(job)


class TestSerial:
    def test_results_in_input_order(self):
        jobs = _jobs(4)
        report = run_batch(jobs)
        assert [r.job.seed for r in report.results] == [0, 1, 2, 3]
        assert all(r.ok for r in report.results)

    def test_failed_job_does_not_kill_batch(self):
        jobs = _jobs(2)
        bad = CompileJob(program=_program(), device="no_such_device")
        report = run_batch([jobs[0], bad, jobs[1]])
        assert [r.ok for r in report.results] == [True, False, True]
        failed = report.results[1]
        assert failed.error_kind == "invalid"
        assert "no_such_device" in failed.error

    def test_invalid_jobs_never_retry(self):
        bad = CompileJob(program=_program(), device="no_such_device")
        report = run_batch([bad], retries=3)
        assert report.results[0].attempts == 1

    def test_retry_recovers_from_transient_fault(self):
        flaky = _FlakyExecute(failures=1)
        engine = BatchEngine(
            retries=2, retry_base_delay=0.001, execute_fn=flaky
        )
        report = engine.run(_jobs(1))
        result = report.results[0]
        assert result.ok
        assert result.attempts == 2
        assert report.telemetry.counter("jobs.retries") == 1

    def test_retries_exhausted_yields_structured_error(self):
        flaky = _FlakyExecute(failures=10)
        engine = BatchEngine(
            retries=2, retry_base_delay=0.001, execute_fn=flaky
        )
        report = engine.run(_jobs(1))
        result = report.results[0]
        assert not result.ok
        assert result.error_kind == "exception"
        assert result.attempts == 3
        assert "transient fault" in result.error

    def test_cache_warm_second_run_is_all_hits(self):
        cache = ResultCache(expected_version=FORMAT_VERSION)
        jobs = _jobs(3)
        cold = run_batch(jobs, cache=cache)
        assert all(not r.cached for r in cold.results)
        warm = run_batch(jobs, cache=cache)
        assert all(r.cached for r in warm.results)
        assert warm.summary()["cached"] == 3
        assert warm.telemetry.counter("jobs.cached") == 3

    def test_cached_result_matches_computed(self):
        cache = ResultCache()
        jobs = _jobs(1)
        cold = run_batch(jobs, cache=cache)
        warm = run_batch(jobs, cache=cache)
        assert warm.results[0].metrics == cold.results[0].metrics
        assert (
            warm.results[0].compiled().circuit.instructions
            == cold.results[0].compiled().circuit.instructions
        )

    def test_duplicate_jobs_hit_cache_within_batch(self):
        cache = ResultCache()
        job = _jobs(1)[0]
        report = run_batch([job, job], cache=cache)
        assert [r.cached for r in report.results] == [False, True]

    def test_summary_counts(self):
        jobs = _jobs(2)
        bad = CompileJob(program=_program(), device="no_such_device")
        report = run_batch(jobs + [bad])
        summary = report.summary()
        assert summary["jobs"] == 3
        assert summary["ok"] == 2
        assert summary["failed"] == 1
        assert summary["latency_p95_ms"] >= summary["latency_p50_ms"]

    def test_render_mentions_throughput_and_hit_rate(self):
        report = run_batch(_jobs(1), cache=ResultCache())
        text = report.render()
        assert "jobs/s" in text
        assert "cache hit rate" in text

    def test_degraded_jobs_surface_in_summary(self):
        from repro.hardware.devices import melbourne_calibration

        dirty = {
            f"{a}-{b}": err
            for (a, b), err in melbourne_calibration().cnot_error.items()
        }
        dirty["0-1"] = float("nan")
        degraded_job = CompileJob(
            program=_program(),
            device="ibmq_16_melbourne",
            method="vic",
            calibration={"cnot_error": dirty},
        )
        report = run_batch(_jobs(1) + [degraded_job])
        summary = report.summary()
        assert summary["degraded"] == 1
        assert summary["warnings_total"] >= 1
        assert len(report.degraded) == 1
        assert "degraded" in report.render()

    def test_degraded_status_survives_cache_hit(self):
        from repro.hardware.devices import melbourne_calibration

        dirty = {
            f"{a}-{b}": err
            for (a, b), err in melbourne_calibration().cnot_error.items()
        }
        dirty["0-1"] = float("nan")
        job = CompileJob(
            program=_program(),
            device="ibmq_16_melbourne",
            method="vic",
            calibration={"cnot_error": dirty},
        )
        cache = ResultCache()
        cold = run_batch([job], cache=cache).results[0]
        warm = run_batch([job], cache=cache).results[0]
        assert warm.cached
        assert warm.warnings == cold.warnings

    def test_engine_validates_config(self):
        with pytest.raises(ValueError):
            BatchEngine(workers=-1)
        with pytest.raises(ValueError):
            BatchEngine(retries=-1)
        with pytest.raises(ValueError):
            BatchEngine(timeout=0)


class TestPooled:
    def test_pooled_matches_serial(self):
        jobs = _jobs(4)
        serial = run_batch(jobs)
        pooled = run_batch(jobs, workers=2)
        assert [r.ok for r in pooled.results] == [True] * 4
        for a, b in zip(serial.results, pooled.results):
            assert a.key == b.key
            assert a.metrics["depth"] == b.metrics["depth"]
            assert a.metrics["gate_count"] == b.metrics["gate_count"]

    def test_pooled_failure_degrades_gracefully(self):
        jobs = _jobs(1)
        bad = CompileJob(program=_program(), device="no_such_device")
        report = run_batch([jobs[0], bad], workers=2)
        assert [r.ok for r in report.results] == [True, False]
        assert report.results[1].error_kind == "invalid"

    def test_pooled_worker_exception_is_structured(self):
        engine = BatchEngine(
            workers=1, retries=0, execute_fn=_crashy_execute
        )
        report = engine.run(_jobs(1))
        result = report.results[0]
        assert not result.ok
        assert result.error_kind == "exception"
        assert "worker exploded" in result.error

    def test_timeout_produces_timeout_error(self):
        engine = BatchEngine(
            workers=1, timeout=0.3, retries=0, execute_fn=_sleepy_execute
        )
        start = time.monotonic()
        report = engine.run(_jobs(1))
        result = report.results[0]
        assert not result.ok
        assert result.error_kind == "timeout"
        assert report.telemetry.counter("jobs.timeouts") == 1
        # The engine must not wait for the abandoned 2 s worker.
        assert time.monotonic() - start < 1.9

    def test_timeout_retries_are_bounded(self):
        engine = BatchEngine(
            workers=1,
            timeout=0.2,
            retries=1,
            retry_base_delay=0.01,
            execute_fn=_sleepy_execute,
        )
        report = engine.run(_jobs(1))
        result = report.results[0]
        assert not result.ok
        assert result.attempts == 2
        assert report.telemetry.counter("jobs.timeouts") == 2

    def test_pooled_cache_populated(self):
        cache = ResultCache()
        jobs = _jobs(2)
        run_batch(jobs, workers=2, cache=cache)
        warm = run_batch(jobs, cache=cache)
        assert all(r.cached for r in warm.results)


class TestSleepHook:
    def test_injected_sleep_replaces_wall_clock_backoff(self):
        delays = []
        engine = BatchEngine(
            retries=2,
            retry_base_delay=0.5,
            execute_fn=_FlakyExecute(failures=1),
            sleep=delays.append,
        )
        start = time.perf_counter()
        report = engine.run(_jobs(1))
        elapsed = time.perf_counter() - start
        assert report.results[0].ok
        assert delays and all(d > 0 for d in delays)
        # The 0.5s base backoff went through the hook, not time.sleep.
        assert elapsed < 0.4

    def test_default_sleep_still_backs_off(self):
        engine = BatchEngine(
            retries=1, retry_base_delay=0.001,
            execute_fn=_FlakyExecute(failures=1),
        )
        assert engine.run(_jobs(1)).results[0].ok


class TestCacheQuarantineTelemetry:
    def test_truncated_entry_counts_as_quarantined(self, tmp_path):
        import pathlib

        directory = str(tmp_path / "cache")
        jobs = _jobs(1)
        run_batch(
            jobs,
            cache=ResultCache(
                directory=directory, expected_version=FORMAT_VERSION
            ),
        )
        entries = list(pathlib.Path(directory).glob("**/*.json"))
        assert entries
        for entry in entries:
            entry.write_text('{"truncated": ')  # the crash mid-write

        cache = ResultCache(
            directory=directory, expected_version=FORMAT_VERSION
        )
        engine = BatchEngine(cache=cache)
        report = engine.run(jobs)
        assert report.results[0].ok
        assert not report.results[0].cached
        assert engine.telemetry.counter("cache_quarantined") == 1
        assert report.summary()["cache_quarantined"] == 1
        # the poisoned file was moved aside, not silently deleted
        assert list(pathlib.Path(directory).glob("**/*.json.corrupt"))
