"""Unit tests for QAIM — including the Figure 3 worked example."""

import numpy as np
import pytest

from repro.compiler.qaim import QAIMConfig, qaim_placement
from repro.hardware import ibmq_20_tokyo, linear_device, ring_device

# Figure 3(c)/5 toy cost Hamiltonian (5 qubits, 7 CPHASEs).
TOY_PAIRS = [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (3, 4)]


class TestFigure3Example:
    """Example 1 of the paper, on ibmq_20_tokyo."""

    def test_heaviest_qubit_gets_strongest_physical_qubit(self):
        # q0 has 4 CPHASEs (heaviest); qubits 7 and 12 tie at strength 18.
        # Deterministic tie-break picks the lower index, 7 — the same
        # choice the paper's example makes "randomly".
        m = qaim_placement(TOY_PAIRS, 5, ibmq_20_tokyo())
        assert m.physical(0) == 7

    def test_q1_lands_on_qubit_12(self):
        # Figure 3(e)(ii): among q0's six physical neighbours (all at
        # distance 1), qubit 12 has the highest connectivity strength.
        m = qaim_placement(TOY_PAIRS, 5, ibmq_20_tokyo())
        assert m.physical(1) == 12

    def test_full_placement_is_deterministic_and_injective(self):
        m = qaim_placement(TOY_PAIRS, 5, ibmq_20_tokyo())
        placed = m.as_dict()
        assert sorted(placed) == [0, 1, 2, 3, 4]
        assert len(set(placed.values())) == 5

    def test_logical_neighbours_end_up_close(self):
        g = ibmq_20_tokyo()
        m = qaim_placement(TOY_PAIRS, 5, g)
        distances = [
            g.distance(m.physical(a), m.physical(b)) for a, b in TOY_PAIRS
        ]
        # QAIM keeps interacting qubits tight: average distance near 1.
        assert max(distances) <= 2
        assert float(np.mean(distances)) < 1.5

    def test_random_tiebreak_picks_7_or_12(self):
        outcomes = set()
        for seed in range(10):
            m = qaim_placement(
                TOY_PAIRS, 5, ibmq_20_tokyo(), rng=np.random.default_rng(seed)
            )
            outcomes.add(m.physical(0))
        assert outcomes <= {7, 12}
        assert len(outcomes) == 2  # both ties actually occur


class TestGeneralBehaviour:
    def test_too_many_logical_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            qaim_placement([(0, 1)], 7, linear_device(6))

    def test_isolated_logical_qubits_placed_by_strength(self):
        m = qaim_placement([(0, 1)], 4, ring_device(8))
        assert len(m.as_dict()) == 4

    def test_placement_order_is_by_activity(self):
        # Star graph: the hub is placed first, on the strongest qubit.
        star = [(0, i) for i in range(1, 5)]
        g = ibmq_20_tokyo()
        m = qaim_placement(star, 5, g)
        strengths = g.connectivity_profile()
        hub_strength = strengths[m.physical(0)]
        assert hub_strength == max(strengths.values())

    def test_neighbour_candidates_preferred_over_global(self):
        # On a line, QAIM should place a chain contiguously.
        chain = [(0, 1), (1, 2), (2, 3)]
        g = linear_device(8)
        m = qaim_placement(chain, 4, g)
        for a, b in chain:
            assert g.distance(m.physical(a), m.physical(b)) <= 2

    def test_fallback_when_no_free_neighbours(self):
        # Fill a tiny device so the neighbour pool empties: still succeeds.
        pairs = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        m = qaim_placement(pairs, 5, ring_device(5))
        assert len(set(m.as_dict().values())) == 5

    def test_radius_config(self):
        m1 = qaim_placement(
            TOY_PAIRS, 5, ibmq_20_tokyo(), config=QAIMConfig(radius=1)
        )
        m3 = qaim_placement(
            TOY_PAIRS, 5, ibmq_20_tokyo(), config=QAIMConfig(radius=3)
        )
        assert len(m1.as_dict()) == len(m3.as_dict()) == 5

    def test_invalid_radius(self):
        with pytest.raises(ValueError, match="radius"):
            QAIMConfig(radius=0)

    def test_weighted_config_runs(self):
        pairs = [(0, 1), (0, 1), (1, 2)]  # (0,1) interacts twice
        m = qaim_placement(
            pairs, 3, ibmq_20_tokyo(), config=QAIMConfig(weighted=True)
        )
        g = ibmq_20_tokyo()
        # The doubly-interacting pair should not be farther than the single.
        assert g.distance(m.physical(0), m.physical(1)) <= g.distance(
            m.physical(1), m.physical(2)
        )

    def test_reproducible_with_seed(self):
        a = qaim_placement(
            TOY_PAIRS, 5, ibmq_20_tokyo(), rng=np.random.default_rng(4)
        )
        b = qaim_placement(
            TOY_PAIRS, 5, ibmq_20_tokyo(), rng=np.random.default_rng(4)
        )
        assert a == b
