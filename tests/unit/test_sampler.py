"""Unit tests for bitstring-count utilities."""

import pytest

from repro.sim.sampler import (
    bitstring_to_index,
    counts_to_probabilities,
    expectation_from_counts,
    index_to_bitstring,
    marginal_counts,
    merge_counts,
    most_frequent,
    total_shots,
)


class TestConversions:
    def test_round_trip(self):
        for i in range(16):
            assert bitstring_to_index(index_to_bitstring(i, 4)) == i

    def test_orientation(self):
        # qubit 0 is the rightmost character
        assert index_to_bitstring(1, 3) == "001"
        assert bitstring_to_index("100") == 4


class TestHistograms:
    def test_total_shots(self):
        assert total_shots({"00": 3, "11": 7}) == 10

    def test_probabilities(self):
        probs = counts_to_probabilities({"0": 1, "1": 3})
        assert probs == {"0": 0.25, "1": 0.75}

    def test_probabilities_empty_rejected(self):
        with pytest.raises(ValueError):
            counts_to_probabilities({})

    def test_merge(self):
        merged = merge_counts({"0": 1}, {"0": 2, "1": 5})
        assert merged == {"0": 3, "1": 5}

    def test_merge_empty(self):
        assert merge_counts() == {}


class TestExpectation:
    def test_mean_of_values(self):
        counts = {"00": 2, "11": 2}
        value = expectation_from_counts(counts, lambda b: b.count("1"))
        assert value == pytest.approx(1.0)

    def test_weighted_mean(self):
        counts = {"0": 3, "1": 1}
        value = expectation_from_counts(counts, lambda b: int(b))
        assert value == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expectation_from_counts({}, lambda b: 0)


class TestMostFrequent:
    def test_modal_bitstring(self):
        assert most_frequent({"01": 5, "10": 9}) == "10"

    def test_tie_breaks_lexicographically(self):
        assert most_frequent({"11": 5, "00": 5}) == "00"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            most_frequent({})


class TestMarginals:
    def test_keep_single_qubit(self):
        counts = {"01": 4, "11": 6}  # qubit0 = 1 always
        assert marginal_counts(counts, [0]) == {"1": 10}

    def test_keep_subset_order(self):
        counts = {"110": 3}  # q2=1 q1=1 q0=0
        assert marginal_counts(counts, [0, 2]) == {"10": 3}

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            marginal_counts({"01": 1}, [5])

    def test_merging_of_collapsed_strings(self):
        counts = {"00": 1, "10": 2}  # marginal on qubit 0 merges both
        assert marginal_counts(counts, [0]) == {"0": 3}
