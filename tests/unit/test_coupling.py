"""Unit tests for coupling graphs, distances and connectivity strength."""

import networkx as nx
import numpy as np
import pytest

from repro.hardware.coupling import CouplingGraph, floyd_warshall
from repro.hardware.devices import figure6_device, ibmq_20_tokyo, linear_device


class TestFloydWarshall:
    def test_line(self):
        dist = floyd_warshall(4, {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0})
        assert dist[0, 3] == 3.0
        assert dist[3, 0] == 3.0
        assert dist[1, 1] == 0.0

    def test_matches_networkx_on_random_graphs(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            g = nx.erdos_renyi_graph(9, 0.4, seed=int(rng.integers(1 << 30)))
            weights = {
                (min(a, b), max(a, b)): float(rng.uniform(0.5, 2.0))
                for a, b in g.edges()
            }
            ours = floyd_warshall(9, weights)
            wg = nx.Graph()
            wg.add_nodes_from(range(9))
            for (a, b), w in weights.items():
                wg.add_edge(a, b, weight=w)
            ref = dict(nx.all_pairs_dijkstra_path_length(wg))
            for a in range(9):
                for b in range(9):
                    if b in ref[a]:
                        assert ours[a, b] == pytest.approx(ref[a][b])
                    else:
                        assert np.isinf(ours[a, b])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            floyd_warshall(2, {(0, 1): -0.1})

    def test_disconnected_is_inf(self):
        dist = floyd_warshall(3, {(0, 1): 1.0})
        assert np.isinf(dist[0, 2])


class TestCouplingGraphStructure:
    def test_edges_normalised(self):
        g = CouplingGraph(3, [(1, 0), (2, 1)])
        assert g.edges == frozenset({(0, 1), (1, 2)})
        assert g.num_edges() == 2

    def test_duplicate_edges_collapse(self):
        g = CouplingGraph(2, [(0, 1), (1, 0)])
        assert g.num_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CouplingGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CouplingGraph(2, [(0, 2)])

    def test_neighbours_and_degree(self):
        g = linear_device(4)
        assert g.neighbours(0) == (1,)
        assert g.neighbours(1) == (0, 2)
        assert g.degree(2) == 2

    def test_has_edge_symmetric(self):
        g = linear_device(3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_is_connected(self):
        assert linear_device(5).is_connected()
        assert not CouplingGraph(4, [(0, 1), (2, 3)]).is_connected()

    def test_subgraph_edges(self):
        g = linear_device(5)
        assert g.subgraph_edges([0, 1, 3]) == [(0, 1)]


class TestDistances:
    def test_hop_distance(self):
        g = linear_device(5)
        assert g.distance(0, 4) == 4
        assert g.distance(2, 2) == 0

    def test_disconnected_distance_raises(self):
        g = CouplingGraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="disconnected"):
            g.distance(0, 2)

    def test_distance_matrix_is_cached_readonly_view(self):
        g = linear_device(3)
        m = g.distance_matrix()
        assert m is g.distance_matrix()
        assert not m.flags.writeable
        with pytest.raises(ValueError):
            m[0, 1] = 99
        assert g.distance(0, 1) == 1

    def test_weighted_distances_figure6(self):
        """Figure 6(d): weighted distances with 1/success edge weights."""
        g = figure6_device()
        weights = {
            (0, 1): 1 / 0.90,
            (0, 5): 1 / 0.82,
            (1, 2): 1 / 0.85,
            (1, 4): 1 / 0.81,
            (2, 3): 1 / 0.89,
            (3, 4): 1 / 0.88,
            (4, 5): 1 / 0.84,
        }
        dist = g.weighted_distance_matrix(weights)
        # Spot-check against the printed table (2 d.p. values in the paper).
        assert dist[0, 1] == pytest.approx(1.11, abs=0.01)
        assert dist[0, 5] == pytest.approx(1.22, abs=0.01)
        assert dist[0, 2] == pytest.approx(2.29, abs=0.01)
        assert dist[0, 3] == pytest.approx(3.41, abs=0.01)
        assert dist[0, 4] == pytest.approx(2.34, abs=0.01)
        assert dist[2, 5] == pytest.approx(3.45, abs=0.01)
        assert dist[1, 4] == pytest.approx(1.23, abs=0.01)

    def test_hop_distances_figure6(self):
        """Figure 6(c): unweighted distances of the 6-qubit device."""
        g = figure6_device()
        expected = {
            (0, 1): 1, (0, 2): 2, (0, 3): 3, (0, 4): 2, (0, 5): 1,
            (1, 2): 1, (1, 3): 2, (1, 4): 1, (1, 5): 2,
            (2, 3): 1, (2, 4): 2, (2, 5): 3,
            (3, 4): 1, (3, 5): 2,
            (4, 5): 1,
        }
        for (a, b), d in expected.items():
            assert g.distance(a, b) == d

    def test_missing_edge_weight_defaults_to_one(self):
        g = linear_device(3)
        dist = g.weighted_distance_matrix({(0, 1): 2.0})
        assert dist[0, 2] == pytest.approx(3.0)  # 2.0 + default 1.0


class TestShortestPath:
    def test_path_endpoints_and_adjacency(self):
        g = ibmq_20_tokyo()
        path = g.shortest_path(0, 19)
        assert path[0] == 0 and path[-1] == 19
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
        assert len(path) == g.distance(0, 19) + 1

    def test_trivial_path(self):
        g = linear_device(3)
        assert g.shortest_path(1, 1) == [1]

    def test_weighted_path_avoids_bad_edge(self):
        # Triangle 0-1-2 where direct edge 0-2 is terrible.
        g = CouplingGraph(3, [(0, 1), (1, 2), (0, 2)])
        dist = g.weighted_distance_matrix({(0, 2): 10.0, (0, 1): 1.0, (1, 2): 1.0})
        assert g.shortest_path(0, 2, dist=dist) == [0, 1, 2]
        assert g.shortest_path(0, 2) == [0, 2]

    def test_disconnected_raises(self):
        g = CouplingGraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="disconnected"):
            g.shortest_path(0, 2)


class TestConnectivityStrength:
    def test_tokyo_matches_figure3b_qubit0(self):
        """Figure 3(b): qubit 0 of tokyo has 2 first + 5 second = 7."""
        g = ibmq_20_tokyo()
        assert g.connectivity_strength(0) == 7

    def test_tokyo_profile_symmetry(self):
        # The tokyo layout is left-right symmetric; strength must match.
        g = ibmq_20_tokyo()
        profile = g.connectivity_profile()
        assert profile[0] == profile[15]  # corner qubits
        assert profile[4] == profile[19]

    def test_radius_one_equals_degree(self):
        g = ibmq_20_tokyo()
        for q in range(g.num_qubits):
            assert g.connectivity_strength(q, radius=1) == g.degree(q)

    def test_radius_grows_monotonically(self):
        g = ibmq_20_tokyo()
        for q in range(g.num_qubits):
            s1 = g.connectivity_strength(q, radius=1)
            s2 = g.connectivity_strength(q, radius=2)
            s3 = g.connectivity_strength(q, radius=3)
            assert s1 <= s2 <= s3

    def test_large_radius_saturates_at_n_minus_1(self):
        g = linear_device(5)
        assert g.connectivity_strength(0, radius=10) == 4

    def test_invalid_radius(self):
        with pytest.raises(ValueError, match="radius"):
            linear_device(3).connectivity_strength(0, radius=0)
