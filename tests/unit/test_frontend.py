"""Tests for the unified problem frontend (protocol, specs, hashing)."""

import numpy as np
import pytest

from repro.qaoa.frontend import (
    PROBLEM_CANONICAL_VERSION,
    Problem,
    cost_values,
    problem_canonical,
    problem_fingerprint,
    problem_from_spec,
)
from repro.qaoa.ising import IsingProblem
from repro.qaoa.problems import MaxCutProblem
from repro.sim.fastpath import cost_diagonal


def _ring5_maxcut():
    return MaxCutProblem(5, [(i, (i + 1) % 5) for i in range(5)])


def _ring5_ising():
    return IsingProblem(
        5,
        {(i, (i + 1) % 5): 0.5 for i in range(4)} | {(0, 4): 0.5},
        {0: 0.25},
        offset=1.0,
    )


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "problem", [_ring5_maxcut(), _ring5_ising()], ids=["maxcut", "ising"]
    )
    def test_both_problem_kinds_satisfy_protocol(self, problem):
        assert isinstance(problem, Problem)
        assert problem.num_qubits == 5
        assert all(len(edge) == 3 for edge in problem.edges)
        assert isinstance(dict(problem.linear), dict)
        program = problem.to_program([0.7], [0.35])
        assert program.num_qubits == 5
        vector = problem.cost_values()
        assert vector.shape == (32,)
        assert problem.optimum() == pytest.approx(float(vector.max()))
        fp = problem.content_fingerprint()
        assert len(fp) == 64 and fp == problem_fingerprint(problem)

    def test_maxcut_cost_values_are_cut_values(self):
        problem = _ring5_maxcut()
        assert np.array_equal(problem.cost_values(), problem.cut_values())
        assert np.array_equal(cost_values(problem), problem.cut_values())

    def test_ising_edges_use_program_weight_convention(self):
        """IsingProblem.edges must carry ``-2 J`` program weights so the
        interned diagonal is shared with its own emitted program."""
        problem = _ring5_ising()
        assert all(w == -1.0 for _, _, w in problem.edges)
        direct = cost_diagonal(problem)
        via_program = cost_diagonal(problem.to_program([0.7], [0.35]))
        assert direct is via_program

    def test_cost_values_falls_back_to_cut_values(self):
        class Legacy:
            def cut_values(self):
                return np.ones(4)

        assert np.array_equal(cost_values(Legacy()), np.ones(4))


class TestCanonicalForm:
    def test_canonical_shape_and_version(self):
        canon = problem_canonical(_ring5_ising())
        assert canon["canonical_version"] == PROBLEM_CANONICAL_VERSION
        assert canon["kind"] == "ising"
        assert canon["num_qubits"] == 5
        assert canon["edges"] == sorted(canon["edges"])
        assert canon["linear"] == [[0, repr(0.25)]]
        assert canon["offset"] == repr(1.0)

    def test_same_couplings_different_kind_never_collide(self):
        """A MaxCut instance and an Ising instance over the same pairs
        have different cost semantics — the kind field keeps their
        fingerprints (and so every cache key above) distinct."""
        maxcut = _ring5_maxcut()
        ising = IsingProblem(5, {(a, b): w for a, b, w in maxcut.edges})
        assert problem_fingerprint(maxcut) != problem_fingerprint(ising)

    def test_fingerprint_ignores_zero_linear_terms(self):
        with_zero = IsingProblem(3, {(0, 1): 1.0}, {2: 0.0})
        without = IsingProblem(3, {(0, 1): 1.0})
        assert problem_fingerprint(with_zero) == problem_fingerprint(without)

    def test_fingerprint_distinguishes_offset(self):
        a = IsingProblem(3, {(0, 1): 1.0}, offset=0.0)
        b = IsingProblem(3, {(0, 1): 1.0}, offset=1.0)
        assert problem_fingerprint(a) != problem_fingerprint(b)


class TestSpecParsing:
    def test_qubo_spec(self):
        problem = problem_from_spec(
            {"qubo": {"matrix": [[1.0, -1.0], [-1.0, 1.0]]}}
        )
        assert isinstance(problem, IsingProblem)
        expected = IsingProblem.from_qubo(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        assert problem_fingerprint(problem) == problem_fingerprint(expected)

    def test_qubo_min_sense(self):
        spec = {"qubo": {"matrix": [[2.0, 0.0], [0.0, 3.0]], "sense": "min"}}
        problem = problem_from_spec(spec)
        # Minimising x0*2 + x1*3 -> best is x = 00 with cost 0.
        assert problem.optimum() == pytest.approx(0.0)

    def test_ising_spec_with_pair_keys(self):
        problem = problem_from_spec(
            {
                "ising": {
                    "num_spins": 3,
                    "quadratic": {"0-1": -0.5, "1,2": 0.25},
                    "linear": {"2": 1.0},
                    "offset": 1.5,
                }
            }
        )
        assert problem.quadratic == {(0, 1): -0.5, (1, 2): 0.25}
        assert problem.linear == {2: 1.0}
        assert problem.offset == 1.5

    def test_ising_spec_with_triple_list_accumulates(self):
        problem = problem_from_spec(
            {
                "ising": {
                    "num_spins": 2,
                    "quadratic": [[0, 1, 0.5], [1, 0, 0.25]],
                }
            }
        )
        assert problem.quadratic == {(0, 1): 0.75}

    def test_maxcut_spec_with_optional_weights(self):
        problem = problem_from_spec(
            {"maxcut": {"num_nodes": 3, "edges": [[0, 1], [1, 2, 2.0]]}}
        )
        assert isinstance(problem, MaxCutProblem)
        assert problem.num_qubits == 3

    def test_rejects_zero_or_multiple_forms(self):
        with pytest.raises(ValueError, match="exactly one"):
            problem_from_spec({})
        with pytest.raises(ValueError, match="exactly one"):
            problem_from_spec(
                {"qubo": {"matrix": [[1]]}, "maxcut": {"num_nodes": 2}}
            )

    def test_rejects_non_object_body_and_missing_matrix(self):
        with pytest.raises(ValueError, match="must be an object"):
            problem_from_spec({"qubo": [[1.0]]})
        with pytest.raises(ValueError, match="matrix"):
            problem_from_spec({"qubo": {"sense": "max"}})
