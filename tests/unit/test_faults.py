"""Unit tests for the calibration fault model (repro.hardware.faults)."""

import datetime
import math

import pytest

from repro.hardware import (
    Calibration,
    CalibrationError,
    CalibrationValidator,
    CouplingGraph,
    FaultInjector,
    RawCalibration,
    RepairPolicy,
    linear_device,
    repair_calibration,
    ring_device,
    uniform_calibration,
)


def _raw(coupling, cnot_error, **kwargs):
    return RawCalibration(coupling=coupling, cnot_error=cnot_error, **kwargs)


class TestValidatorClassification:
    def test_clean_feed(self):
        report = CalibrationValidator().validate(
            uniform_calibration(ring_device(4))
        )
        assert report.clean
        assert report.defects == []
        assert "clean" in report.summary()

    def test_nan_classified_non_finite(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): float("nan"), (1, 2): 0.01})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"non_finite": 1}
        assert report.defects[0].edge == (0, 1)

    def test_inf_classified_non_finite(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): float("inf")})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"non_finite": 1}

    def test_non_numeric_classified_non_finite(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): "broken"})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"non_finite": 1}

    def test_out_of_range(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): -0.2, (1, 2): 1.5})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"out_of_range": 2}

    def test_missing_edge(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): 0.01})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"missing_edge": 1}
        assert report.defects[0].edge == (1, 2)

    def test_unknown_edge(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): 0.01, (1, 2): 0.01, (0, 2): 0.01})
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"unknown_edge": 1}

    def test_dead_coupler_threshold(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): 0.6, (1, 2): 0.01})
        report = CalibrationValidator(dead_threshold=0.5).validate(raw)
        assert report.counts() == {"dead_coupler": 1}
        # Below the threshold the same entry is healthy.
        report = CalibrationValidator(dead_threshold=0.7).validate(raw)
        assert report.clean

    def test_bad_qubit_rate(self):
        g = linear_device(2)
        raw = _raw(
            g,
            {(0, 1): 0.01},
            single_qubit_error={0: float("nan")},
            readout_error={7: 0.1},
        )
        report = CalibrationValidator().validate(raw)
        assert report.counts() == {"bad_qubit_rate": 2}

    def test_stale_timestamp(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): 0.01}, timestamp="4/8/2020")
        validator = CalibrationValidator(
            max_age_days=30.0,
            now=datetime.datetime(2020, 6, 1),
        )
        report = validator.validate(raw)
        assert report.counts() == {"stale_timestamp": 1}

    def test_fresh_timestamp_not_flagged(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): 0.01}, timestamp="4/8/2020")
        validator = CalibrationValidator(
            max_age_days=90.0, now=datetime.datetime(2020, 5, 1)
        )
        assert validator.validate(raw).clean

    def test_unparseable_timestamp_ignored(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): 0.01}, timestamp="last tuesday")
        validator = CalibrationValidator(max_age_days=1.0)
        assert validator.validate(raw).clean

    def test_edge_key_normalisation(self):
        g = linear_device(2)
        raw = _raw(g, {(1, 0): float("nan")})
        report = CalibrationValidator().validate(raw)
        assert report.defects[0].edge == (0, 1)

    def test_validates_clean_calibration_instances(self):
        report = CalibrationValidator().validate(
            uniform_calibration(linear_device(4))
        )
        assert report.clean


class TestRepair:
    def test_clean_feed_untouched(self):
        cal = uniform_calibration(ring_device(5), cnot_error=0.02)
        result = repair_calibration(cal)
        assert not result.degraded
        assert result.warnings == []
        assert result.pruned_edges == []
        assert result.coupling is cal.coupling
        assert result.calibration.cnot_error == cal.cnot_error

    def test_nan_imputed(self):
        g = linear_device(4)
        raw = _raw(g, {(0, 1): float("nan"), (1, 2): 0.02, (2, 3): 0.04})
        result = repair_calibration(raw)
        assert result.degraded
        err = result.calibration.cnot_error_rate(0, 1)
        assert math.isfinite(err) and 0.0 <= err < 1.0
        assert any("imputed" in w for w in result.warnings)

    def test_neighbor_median_prefers_adjacent_entries(self):
        # Edge (0,1) shares qubit 1 with (1,2)=0.1; the far edge (3,4)=0.5
        # must not dominate the imputation.
        g = linear_device(5)
        raw = _raw(
            g,
            {
                (0, 1): float("nan"),
                (1, 2): 0.1,
                (2, 3): 0.1,
                (3, 4): 0.4,
            },
        )
        result = repair_calibration(raw)
        assert result.calibration.cnot_error_rate(0, 1) == pytest.approx(0.1)

    def test_global_median_policy(self):
        g = linear_device(4)
        raw = _raw(g, {(0, 1): float("nan"), (1, 2): 0.02, (2, 3): 0.06})
        result = repair_calibration(raw, policy=RepairPolicy(impute="median"))
        assert result.calibration.cnot_error_rate(0, 1) == pytest.approx(0.04)

    def test_default_policy_when_nothing_healthy(self):
        g = linear_device(2)
        raw = _raw(g, {(0, 1): float("nan")})
        result = repair_calibration(
            raw, policy=RepairPolicy(default_error=0.03)
        )
        assert result.calibration.cnot_error_rate(0, 1) == pytest.approx(0.03)

    def test_missing_edges_imputed(self):
        g = ring_device(4)
        raw = _raw(g, {(0, 1): 0.02, (1, 2): 0.02})
        result = repair_calibration(raw)
        assert set(result.calibration.cnot_error) == set(g.edges)

    def test_unknown_edges_dropped(self):
        g = linear_device(3)
        raw = _raw(g, {(0, 1): 0.01, (1, 2): 0.01, (0, 2): 0.5})
        result = repair_calibration(raw)
        assert (0, 2) not in result.calibration.cnot_error
        assert any("unknown" in w for w in result.warnings)

    def test_dead_coupler_pruned_from_topology(self):
        g = ring_device(5)  # removing one ring edge keeps it connected
        errors = {e: 0.01 for e in g.edges}
        errors[(0, 1)] = 0.9
        result = repair_calibration(_raw(g, errors))
        assert result.pruned_edges == [(0, 1)]
        assert not result.coupling.has_edge(0, 1)
        assert result.coupling.is_connected()
        assert result.coupling.name == g.name  # same device, degraded view

    def test_dead_coupler_kept_when_prune_would_disconnect(self):
        g = linear_device(3)  # every edge is a bridge
        errors = {(0, 1): 0.9, (1, 2): 0.01}
        result = repair_calibration(_raw(g, errors))
        assert result.pruned_edges == []
        assert result.coupling.has_edge(0, 1)
        assert any("disconnect" in w for w in result.warnings)
        # The dead-but-kept error rate is preserved so VIC de-prioritises it.
        assert result.calibration.cnot_error_rate(0, 1) == pytest.approx(0.9)

    def test_dead_qubit_keeps_one_lifeline(self):
        # All couplers of qubit 0 dead: pruning must keep at least one so
        # the device stays connected.
        g = ring_device(4)
        errors = {e: 0.01 for e in g.edges}
        errors[(0, 1)] = 0.95
        errors[(0, 3)] = 0.9
        result = repair_calibration(_raw(g, errors))
        assert len(result.pruned_edges) == 1
        assert result.coupling.degree(0) == 1
        assert result.coupling.is_connected()

    def test_prune_disabled_by_policy(self):
        g = ring_device(5)
        errors = {e: 0.01 for e in g.edges}
        errors[(0, 1)] = 0.9
        result = repair_calibration(
            _raw(g, errors), policy=RepairPolicy(prune_dead=False)
        )
        assert result.pruned_edges == []
        assert result.coupling.has_edge(0, 1)
        assert result.degraded

    def test_bad_qubit_rates_dropped(self):
        g = linear_device(2)
        raw = _raw(
            g,
            {(0, 1): 0.01},
            single_qubit_error={0: float("inf"), 1: 0.001},
            readout_error={5: 0.1},
        )
        result = repair_calibration(raw)
        assert result.calibration.single_qubit_error == {1: 0.001}
        assert result.calibration.readout_error == {}
        assert any("per-qubit" in w for w in result.warnings)

    def test_disconnected_device_unrepairable(self):
        g = CouplingGraph(4, [(0, 1), (2, 3)], name="split")
        raw = _raw(g, {(0, 1): 0.01, (2, 3): 0.01})
        with pytest.raises(CalibrationError, match="disconnected"):
            repair_calibration(raw)

    def test_calibration_error_is_value_error(self):
        # The service layer classifies ValueError as "invalid"; the chaos
        # contract depends on CalibrationError being in that family.
        assert issubclass(CalibrationError, ValueError)

    def test_repaired_vic_weights_always_finite(self):
        g = ring_device(6)
        errors = {e: 0.02 for e in g.edges}
        errors[(0, 1)] = float("nan")
        errors[(1, 2)] = 5.0
        errors[(2, 3)] = 0.95
        result = repair_calibration(_raw(g, errors))
        for weight in result.calibration.vic_edge_weights().values():
            assert math.isfinite(weight) and weight > 0


class TestFaultInjector:
    def test_deterministic_under_seed(self):
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        a = FaultInjector(seed=3).degrade(
            cal, dead_edges=2, drift_sigma=0.2, dropout=0.25, nan_entries=1
        )
        b = FaultInjector(seed=3).degrade(
            cal, dead_edges=2, drift_sigma=0.2, dropout=0.25, nan_entries=1
        )
        assert sorted(a.cnot_error) == sorted(b.cnot_error)
        for edge in a.cnot_error:
            va, vb = a.cnot_error[edge], b.cnot_error[edge]
            assert (va == vb) or (math.isnan(va) and math.isnan(vb))

    def test_kill_qubits_marks_all_couplers_dead(self):
        cal = uniform_calibration(ring_device(6), cnot_error=0.02)
        raw = FaultInjector(seed=0, dead_error=0.8).kill_qubits(
            RawCalibration.from_calibration(cal), count=1
        )
        dead = [e for e, v in raw.cnot_error.items() if v == 0.8]
        assert len(dead) == 2  # a ring qubit has exactly two couplers
        (a1, b1), (a2, b2) = dead
        assert set((a1, b1)) & set((a2, b2))  # they share the dead qubit

    def test_kill_edges_count(self):
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        raw = FaultInjector(seed=1, dead_error=0.9).kill_edges(
            RawCalibration.from_calibration(cal), count=3
        )
        assert sum(1 for v in raw.cnot_error.values() if v == 0.9) == 3

    def test_dropout_removes_entries(self):
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        raw = FaultInjector(seed=2).drop_entries(
            RawCalibration.from_calibration(cal), fraction=0.5
        )
        assert len(raw.cnot_error) == 4

    def test_poison_nan(self):
        cal = uniform_calibration(ring_device(6), cnot_error=0.02)
        raw = FaultInjector(seed=4).poison(
            RawCalibration.from_calibration(cal), count=2
        )
        assert sum(1 for v in raw.cnot_error.values() if math.isnan(v)) == 2

    def test_inflate_scales_and_caps(self):
        cal = uniform_calibration(ring_device(4), cnot_error=0.1)
        raw = FaultInjector(seed=5).inflate(
            RawCalibration.from_calibration(cal), factor=20.0
        )
        assert all(v == 0.95 for v in raw.cnot_error.values())

    def test_degrade_does_not_mutate_input(self):
        cal = uniform_calibration(ring_device(6), cnot_error=0.02)
        FaultInjector(seed=6).degrade(cal, dead_edges=2, nan_entries=2)
        assert all(v == 0.02 for v in cal.cnot_error.values())

    def test_degrade_sets_timestamp(self):
        cal = uniform_calibration(ring_device(4))
        raw = FaultInjector(seed=0).degrade(cal, timestamp="1/1/2019")
        assert raw.timestamp == "1/1/2019"

    def test_injected_then_repaired_roundtrip(self):
        cal = uniform_calibration(ring_device(8), cnot_error=0.02)
        raw = FaultInjector(seed=9).degrade(
            cal,
            dead_qubits=1,
            dead_edges=1,
            drift_sigma=0.3,
            dropout=0.2,
            nan_entries=2,
            out_of_range_entries=1,
            inflate=2.0,
        )
        result = repair_calibration(raw)
        assert result.degraded
        assert result.coupling.is_connected()
        assert isinstance(result.calibration, Calibration)
