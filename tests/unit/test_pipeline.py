"""Pass pipeline unit tests: trace accounting, pass assembly, records,
memoization, knob passthrough, and the trace's ride-alongs (JSON, CLI,
service metrics, batch telemetry)."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.compiler import (
    METHOD_PRESETS,
    PipelineSpec,
    build_pipeline,
    compile_spec,
    compile_with_method,
    from_json,
    to_json,
)
from repro.compiler.pipeline import PassRecord
from repro.hardware import ibmq_16_melbourne, ibmq_20_tokyo, melbourne_calibration
from repro.qaoa import MaxCutProblem
from repro.service import CompileJob, execute_job, run_batch

PROBLEM = MaxCutProblem(
    8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7),
        (1, 6), (2, 5)]
)


def _compile(method="ic", **kwargs):
    program = PROBLEM.to_program([0.7], [0.35])
    kwargs.setdefault("rng", np.random.default_rng(0))
    if method == "vic":
        kwargs.setdefault("calibration", melbourne_calibration())
        return compile_with_method(
            program, ibmq_16_melbourne(), method, **kwargs
        )
    return compile_with_method(program, ibmq_20_tokyo(), method, **kwargs)


class TestTraceAccounting:
    @pytest.mark.parametrize("method", sorted(METHOD_PRESETS))
    def test_pass_seconds_sum_to_compile_time(self, method):
        compiled = _compile(method)
        total = sum(r.seconds for r in compiled.pass_trace)
        # The pipeline loop's own overhead is the only unattributed time:
        # the per-pass sum can never exceed the wall total, and the gap
        # must stay a small fraction (plus a scheduling-noise floor).
        assert 0.0 <= compiled.compile_time - total
        assert compiled.compile_time - total <= max(
            0.25 * compiled.compile_time, 0.005
        )

    @pytest.mark.parametrize("method", sorted(METHOD_PRESETS))
    def test_pass_swaps_sum_to_swap_count(self, method):
        compiled = _compile(method)
        assert sum(r.swaps for r in compiled.pass_trace) == compiled.swap_count

    def test_gate_deltas_sum_to_circuit_length(self):
        compiled = _compile("ic")
        assert sum(
            r.gate_delta for r in compiled.pass_trace
        ) == len(compiled.circuit)


class TestPipelineAssembly:
    EXPECTED = {
        "naive": ["place/random", "order/random", "route/layered"],
        "greedy_v": ["place/greedy_v", "order/random", "route/layered"],
        "greedy_e": ["place/greedy_e", "order/random", "route/layered"],
        "qaim": ["place/qaim", "order/random", "route/layered"],
        "ip": ["place/qaim", "order/ip", "route/layered"],
        "ic": ["place/qaim", "route/ic"],
        "vic": ["place/qaim", "distance/vic", "route/vic"],
        "swap_network": ["place/linear", "route/swap_network"],
        "parity": ["encode/parity"],
    }

    @pytest.mark.parametrize("method", sorted(METHOD_PRESETS))
    def test_preset_pass_names(self, method):
        compiled = _compile(method)
        assert [r.name for r in compiled.pass_trace] == self.EXPECTED[method]

    def test_crosstalk_appends_a_pass(self):
        compiled = _compile("ic", crosstalk_conflicts=[((0, 1), (2, 3))])
        assert [r.name for r in compiled.pass_trace] == [
            "place/qaim", "route/ic", "crosstalk/sequentialize",
        ]

    def test_lower_spec_appends_peephole(self):
        program = PROBLEM.to_program([0.7], [0.35])
        spec = METHOD_PRESETS["ic"].replace(lower=True)
        compiled = compile_spec(
            program, ibmq_20_tokyo(), spec, rng=np.random.default_rng(0)
        )
        assert compiled.pass_trace[-1].name == "lower/peephole"

    def test_sabre_router_renames_route_pass(self):
        compiled = _compile("qaim", router="sabre")
        assert compiled.pass_trace[-1].name == "route/sabre"

    def test_build_pipeline_rejects_unknown_ordering(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            build_pipeline(PipelineSpec(ordering="bogus"))


class TestSpecCompat:
    def test_presets_unpack_as_tuples(self):
        with pytest.warns(DeprecationWarning, match="tuple-unpacking"):
            placement, ordering = METHOD_PRESETS["ic"]
        assert (placement, ordering) == ("qaim", "ic")

    def test_method_label(self):
        assert METHOD_PRESETS["vic"].method == "qaim+vic"

    def test_replace_makes_changed_copy(self):
        spec = METHOD_PRESETS["ip"].replace(router="sabre", qaim_radius=3)
        assert (spec.router, spec.qaim_radius) == ("sabre", 3)
        assert METHOD_PRESETS["ip"].router == "layered"


class TestPassRecord:
    def test_round_trip(self):
        record = PassRecord(
            name="route/ic", seconds=0.5, swaps=3,
            depth_delta=7, gate_delta=21, info={"router": "layered"},
        )
        assert PassRecord.from_dict(record.to_dict()) == record

    def test_json_round_trip_preserves_trace(self):
        compiled = _compile("vic")
        restored = from_json(to_json(compiled))
        assert restored.pass_trace == compiled.pass_trace


class TestNativeMemoization:
    def test_same_object_per_flag(self):
        compiled = _compile("ic")
        assert compiled.native() is compiled.native()
        assert compiled.native(optimize=True) is compiled.native(optimize=True)

    def test_flags_cached_independently(self):
        compiled = _compile("ic")
        assert compiled.native(optimize=True) is not compiled.native()


class TestKnobPassthrough:
    def test_qaim_radius_reaches_placement(self):
        wide = _compile("qaim", qaim_radius=3)
        assert wide.pass_trace[0].info["radius"] == 3

    def test_qaim_radius_changes_placement(self):
        r1 = _compile("qaim", qaim_radius=1)
        r3 = _compile("qaim", qaim_radius=3)
        assert r1.pass_trace[0].info["radius"] == 1
        assert r3.pass_trace[0].info["radius"] == 3

    def test_crosstalk_keeps_conflicts_apart(self):
        from repro.circuits import asap_layers

        conflicts = [((0, 1), (2, 3))]
        compiled = _compile("ic", crosstalk_conflicts=conflicts)
        for layer in asap_layers(compiled.circuit):
            pairs = {
                frozenset(inst.qubits) for inst in layer if inst.is_two_qubit
            }
            assert not (
                frozenset((0, 1)) in pairs and frozenset((2, 3)) in pairs
            )


class TestCLITrace:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_trace_flag_renders_table(self):
        code, text = self._run(
            ["compile", "--nodes", "8", "--method", "ic",
             "--seed", "1", "--trace"]
        )
        assert code == 0
        assert "pass trace:" in text
        assert "place/qaim" in text
        assert "route/ic" in text
        assert "(total)" in text

    def test_router_and_radius_flags(self):
        code, text = self._run(
            ["compile", "--nodes", "8", "--method", "ip", "--seed", "1",
             "--router", "sabre", "--qaim-radius", "3", "--trace"]
        )
        assert code == 0
        assert "route/sabre" in text

    def test_crosstalk_flag(self):
        code, text = self._run(
            ["compile", "--nodes", "8", "--method", "ic", "--seed", "1",
             "--crosstalk", "0-1:2-3", "--trace"]
        )
        assert code == 0
        assert "crosstalk/sequentialize" in text


class TestServiceTrace:
    def test_job_metrics_carry_pass_trace(self):
        job = CompileJob(
            program=PROBLEM.to_program([0.7], [0.35]),
            device="ibmq_20_tokyo", method="ic", seed=0,
        )
        result = execute_job(job)
        assert result.ok
        names = [r["name"] for r in result.metrics["pass_trace"]]
        assert names == ["place/qaim", "route/ic"]

    def test_batch_telemetry_aggregates_pass_times(self):
        jobs = [
            CompileJob(
                program=PROBLEM.to_program([0.7], [0.35]),
                device="ibmq_20_tokyo", method="ic", seed=i,
            )
            for i in range(3)
        ]
        report = run_batch(jobs)
        summary = report.pass_summary()
        assert set(summary) == {"place/qaim", "route/ic"}
        for stats in summary.values():
            assert stats["count"] == 3
            assert stats["min"] <= stats["p50"] <= stats["max"]
