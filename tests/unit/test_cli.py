"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDevices:
    def test_lists_library(self):
        code, text = _run(["devices"])
        assert code == 0
        assert "ibmq_20_tokyo" in text
        assert "ibmq_16_melbourne" in text


class TestProfile:
    def test_tokyo_profile(self):
        code, text = _run(["profile", "ibmq_20_tokyo"])
        assert code == 0
        assert "connectivity strength" in text
        # Figure 3(b): qubit 0 has degree 2 and strength 7.
        lines = [l for l in text.splitlines() if l.strip().startswith("0 ")]
        assert any("7" in l for l in lines)

    def test_radius_flag(self):
        code, text = _run(["profile", "ring_8", "--radius", "1"])
        assert code == 0

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            _run(["profile", "nonexistent"])


class TestCompile:
    def test_basic_compile(self):
        code, text = _run(
            ["compile", "--nodes", "6", "--device", "ring_8",
             "--method", "ic", "--seed", "3"]
        )
        assert code == 0
        assert "depth=" in text
        assert "qaim+ic" in text

    def test_vic_gets_calibration_automatically(self):
        code, text = _run(
            ["compile", "--nodes", "6", "--device", "ibmq_16_melbourne",
             "--method", "vic", "--seed", "3"]
        )
        assert code == 0
        assert "success probability=" in text

    def test_qasm_output(self, tmp_path):
        qasm_file = tmp_path / "circuit.qasm"
        code, text = _run(
            ["compile", "--nodes", "5", "--device", "ring_8",
             "--qasm", str(qasm_file)]
        )
        assert code == 0
        content = qasm_file.read_text()
        assert content.startswith("OPENQASM 2.0;")
        from repro.circuits.qasm import loads

        loads(content)  # must parse back

    def test_draw_flag(self):
        code, text = _run(
            ["compile", "--nodes", "4", "--device", "ring_8", "--draw"]
        )
        assert code == 0
        assert "q0" in text

    def test_seed_reproducibility(self):
        def strip_timing(run):
            code, text = run
            lines = [
                line.split("compile=")[0] for line in text.splitlines()
            ]
            return code, lines

        a = _run(["compile", "--nodes", "6", "--device", "ring_8", "--seed", "9"])
        b = _run(["compile", "--nodes", "6", "--device", "ring_8", "--seed", "9"])
        assert strip_timing(a) == strip_timing(b)


class TestExperiment:
    def test_sec6(self):
        code, text = _run(["experiment", "sec6", "--instances", "3"])
        assert code == 0
        assert "sec6_planner" in text
        assert "NAIVE" in text


class TestAnalyze:
    def test_analyze_output(self):
        code, text = _run(
            ["analyze", "--nodes", "8", "--device", "ring_8",
             "--method", "ic", "--seed", "2"]
        )
        assert code == 0
        assert "routing" in text
        assert "mean concurrency" in text
        assert "hottest couplings" in text

    def test_analyze_vic_gets_calibration(self):
        code, text = _run(
            ["analyze", "--nodes", "8", "--device", "ibmq_16_melbourne",
             "--method", "vic", "--seed", "2"]
        )
        assert code == 0
        assert "qaim+vic" in text


class TestArg:
    def test_arg_command(self):
        code, text = _run(
            ["arg", "--nodes", "6", "--shots", "512",
             "--trajectories", "4", "--seed", "1"]
        )
        assert code == 0
        assert "ARG" in text
        assert "QAIM" in text and "VIC" in text
