"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDevices:
    def test_lists_library(self):
        code, text = _run(["devices"])
        assert code == 0
        assert "ibmq_20_tokyo" in text
        assert "ibmq_16_melbourne" in text


class TestProfile:
    def test_tokyo_profile(self):
        code, text = _run(["profile", "ibmq_20_tokyo"])
        assert code == 0
        assert "connectivity strength" in text
        # Figure 3(b): qubit 0 has degree 2 and strength 7.
        lines = [l for l in text.splitlines() if l.strip().startswith("0 ")]
        assert any("7" in l for l in lines)

    def test_radius_flag(self):
        code, text = _run(["profile", "ring_8", "--radius", "1"])
        assert code == 0

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            _run(["profile", "nonexistent"])


class TestCompile:
    def test_basic_compile(self):
        code, text = _run(
            ["compile", "--nodes", "6", "--device", "ring_8",
             "--method", "ic", "--seed", "3"]
        )
        assert code == 0
        assert "depth=" in text
        assert "qaim+ic" in text

    def test_vic_gets_calibration_automatically(self):
        code, text = _run(
            ["compile", "--nodes", "6", "--device", "ibmq_16_melbourne",
             "--method", "vic", "--seed", "3"]
        )
        assert code == 0
        assert "success probability=" in text

    def test_qasm_output(self, tmp_path):
        qasm_file = tmp_path / "circuit.qasm"
        code, text = _run(
            ["compile", "--nodes", "5", "--device", "ring_8",
             "--qasm", str(qasm_file)]
        )
        assert code == 0
        content = qasm_file.read_text()
        assert content.startswith("OPENQASM 2.0;")
        from repro.circuits.qasm import loads

        loads(content)  # must parse back

    def test_draw_flag(self):
        code, text = _run(
            ["compile", "--nodes", "4", "--device", "ring_8", "--draw"]
        )
        assert code == 0
        assert "q0" in text

    def test_seed_reproducibility(self):
        def strip_timing(run):
            code, text = run
            lines = [
                line.split("compile=")[0] for line in text.splitlines()
            ]
            return code, lines

        a = _run(["compile", "--nodes", "6", "--device", "ring_8", "--seed", "9"])
        b = _run(["compile", "--nodes", "6", "--device", "ring_8", "--seed", "9"])
        assert strip_timing(a) == strip_timing(b)


class TestExperiment:
    def test_sec6(self):
        code, text = _run(["experiment", "sec6", "--instances", "3"])
        assert code == 0
        assert "sec6_planner" in text
        assert "NAIVE" in text


class TestAnalyze:
    def test_analyze_output(self):
        code, text = _run(
            ["analyze", "--nodes", "8", "--device", "ring_8",
             "--method", "ic", "--seed", "2"]
        )
        assert code == 0
        assert "routing" in text
        assert "mean concurrency" in text
        assert "hottest couplings" in text

    def test_analyze_vic_gets_calibration(self):
        code, text = _run(
            ["analyze", "--nodes", "8", "--device", "ibmq_16_melbourne",
             "--method", "vic", "--seed", "2"]
        )
        assert code == 0
        assert "qaim+vic" in text


class TestArg:
    def test_arg_command(self):
        code, text = _run(
            ["arg", "--nodes", "6", "--shots", "512",
             "--trajectories", "4", "--seed", "1"]
        )
        assert code == 0
        assert "ARG" in text
        assert "QAIM" in text and "VIC" in text


class TestCompileJson:
    def test_json_document_shape(self):
        import json

        code, text = _run(["compile", "--nodes", "6", "--json"])
        assert code == 0
        document = json.loads(text)
        assert document["metrics"]["depth"] > 0
        from repro.compiler.serialize import FORMAT_VERSION

        assert document["result"]["format_version"] == FORMAT_VERSION
        assert document["result"]["qasm"].startswith("OPENQASM")

    def test_json_result_deserialises(self):
        import json

        from repro.compiler.serialize import from_json

        code, text = _run(["compile", "--nodes", "6", "--json"])
        assert code == 0
        document = json.loads(text)
        compiled = from_json(json.dumps(document["result"]))
        assert compiled.depth() == document["metrics"]["depth"]

    def test_unknown_device_exits_cleanly(self, capsys):
        code, _ = _run(["compile", "--device", "nonexistent"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown device" in captured.err
        assert "Traceback" not in captured.err


def _write_jobs(path, count=4):
    import json

    lines = ["# test jobs"]
    for i in range(count):
        lines.append(
            json.dumps(
                {
                    "id": f"job-{i}",
                    "problem": {
                        "family": "er",
                        "nodes": 8,
                        "param": 0.5,
                        "seed": i,
                    },
                    "device": "ibmq_20_tokyo",
                    "method": "ic" if i % 2 else "ip",
                    "seed": 0,
                }
            )
        )
    path.write_text("\n".join(lines) + "\n")


class TestBatch:
    def test_batch_runs_and_reports(self, tmp_path):
        import json

        jobs_file = tmp_path / "jobs.jsonl"
        out_file = tmp_path / "results.jsonl"
        _write_jobs(jobs_file)
        code, text = _run(
            ["batch", str(jobs_file), "-o", str(out_file)]
        )
        assert code == 0
        assert "cache hit rate" in text
        assert "latency p95" in text
        records = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
        ]
        assert len(records) == 4
        assert all(r["ok"] for r in records)
        assert all(r["metrics"]["depth"] > 0 for r in records)

    def test_batch_disk_cache_warm_rerun(self, tmp_path):
        import json

        jobs_file = tmp_path / "jobs.jsonl"
        cache_dir = tmp_path / "cache"
        _write_jobs(jobs_file)
        code, _ = _run(
            ["batch", str(jobs_file), "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        out_file = tmp_path / "warm.jsonl"
        code, text = _run(
            ["batch", str(jobs_file), "--cache-dir", str(cache_dir),
             "-o", str(out_file)]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
        ]
        assert all(r["cached"] for r in records)
        assert "100.0%" in text

    def test_batch_failed_job_sets_exit_code(self, tmp_path):
        import json

        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            json.dumps(
                {
                    "program": {"num_qubits": 3, "edges": [[0, 1]]},
                    "device": "no_such_device",
                }
            )
            + "\n"
        )
        code, text = _run(["batch", str(jobs_file)])
        assert code == 1
        assert '"ok": false' in text

    def test_batch_missing_file(self, capsys):
        code, _ = _run(["batch", "/nonexistent/jobs.jsonl"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_empty_file(self, tmp_path, capsys):
        jobs_file = tmp_path / "empty.jsonl"
        jobs_file.write_text("# nothing here\n")
        code, _ = _run(["batch", str(jobs_file)])
        assert code == 2
        assert "no jobs" in capsys.readouterr().err

    def test_batch_malformed_job(self, tmp_path, capsys):
        jobs_file = tmp_path / "bad.jsonl"
        jobs_file.write_text('{"device": "ring_8"}\n')
        code, _ = _run(["batch", str(jobs_file)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err

    def test_example_job_file_loads(self):
        import pathlib

        from repro.service import load_jobs_jsonl

        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "batch_jobs.jsonl"
        )
        jobs = load_jobs_jsonl(example.read_text().splitlines())
        assert len(jobs) == 10


class TestCacheCommand:
    def _populate(self, tmp_path):
        jobs_file = tmp_path / "jobs.jsonl"
        _write_jobs(jobs_file, count=2)
        cache_dir = tmp_path / "cache"
        code, _ = _run(
            ["batch", str(jobs_file), "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        return cache_dir

    def test_stats(self, tmp_path):
        cache_dir = self._populate(tmp_path)
        code, text = _run(["cache", "stats", "--dir", str(cache_dir)])
        assert code == 0
        assert "entries" in text
        assert " 2" in text

    def test_prune_removes_stale_only(self, tmp_path):
        import json

        cache_dir = self._populate(tmp_path)
        stale = cache_dir / "deadbeef.json"
        stale.write_text(json.dumps({"format_version": 0}))
        code, text = _run(["cache", "prune", "--dir", str(cache_dir)])
        assert code == 0
        assert "pruned 1" in text
        assert not stale.exists()

    def test_clear(self, tmp_path):
        cache_dir = self._populate(tmp_path)
        code, text = _run(["cache", "clear", "--dir", str(cache_dir)])
        assert code == 0
        assert "cleared 2" in text
        assert list(cache_dir.glob("*.json")) == []
