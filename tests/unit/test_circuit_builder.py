"""Unit tests for the QAOA circuit builder."""

import numpy as np
import pytest

from repro.qaoa.circuit_builder import build_qaoa_circuit, order_edges
from repro.qaoa.problems import MaxCutProblem


@pytest.fixture
def triangle():
    return MaxCutProblem(3, [(0, 1), (1, 2), (0, 2)])


class TestStructure:
    def test_p1_layout(self, triangle):
        program = triangle.to_program([0.5], [0.3])
        qc = build_qaoa_circuit(program)
        names = [i.name for i in qc]
        assert names[:3] == ["h"] * 3
        assert names[3:6] == ["cphase"] * 3
        assert names[6:9] == ["rx"] * 3
        assert names[9:] == ["measure"] * 3

    def test_p2_repeats_blocks(self, triangle):
        program = triangle.to_program([0.5, 0.2], [0.3, 0.1])
        qc = build_qaoa_circuit(program)
        ops = qc.count_ops()
        assert ops["cphase"] == 6
        assert ops["rx"] == 6
        assert ops["h"] == 3

    def test_angles(self, triangle):
        program = triangle.to_program([0.5], [0.3])
        qc = build_qaoa_circuit(program)
        cphases = [i for i in qc if i.name == "cphase"]
        assert all(i.params == (-0.5,) for i in cphases)
        rxs = [i for i in qc if i.name == "rx"]
        assert all(i.params == (0.6,) for i in rxs)

    def test_no_measure_option(self, triangle):
        program = triangle.to_program([0.5], [0.3])
        qc = build_qaoa_circuit(program, measure=False)
        assert "measure" not in qc.count_ops()

    def test_random_order_reproducible(self, triangle):
        program = triangle.to_program([0.5], [0.3])
        a = build_qaoa_circuit(program, rng=np.random.default_rng(1))
        b = build_qaoa_circuit(program, rng=np.random.default_rng(1))
        assert a.instructions == b.instructions

    def test_explicit_order(self, triangle):
        program = triangle.to_program([0.5], [0.3])
        order = [(0, 2), (0, 1), (1, 2)]
        qc = build_qaoa_circuit(program, edge_orders=[order])
        cphases = [tuple(i.qubits) for i in qc if i.name == "cphase"]
        assert cphases == order

    def test_wrong_number_of_orders_rejected(self, triangle):
        program = triangle.to_program([0.5, 0.2], [0.3, 0.1])
        with pytest.raises(ValueError, match="entries"):
            build_qaoa_circuit(program, edge_orders=[[(0, 1), (1, 2), (0, 2)]])


class TestOrderEdges:
    GATES = [(0, 1, -0.5), (1, 2, -0.5), (0, 2, -0.5)]

    def test_explicit_order_wins(self):
        out = order_edges(self.GATES, order=[(0, 2), (1, 2), (0, 1)])
        assert [g[:2] for g in out] == [(0, 2), (1, 2), (0, 1)]

    def test_order_matches_unordered_pairs(self):
        out = order_edges(self.GATES, order=[(2, 0), (2, 1), (1, 0)])
        assert [g[:2] for g in out] == [(0, 2), (1, 2), (0, 1)]

    def test_missing_pair_rejected(self):
        with pytest.raises(ValueError, match="not found"):
            order_edges(self.GATES, order=[(0, 1), (1, 2), (1, 3)])

    def test_incomplete_order_rejected(self):
        with pytest.raises(ValueError, match="omitted"):
            order_edges(self.GATES, order=[(0, 1)])

    def test_no_order_no_rng_keeps_input(self):
        assert order_edges(self.GATES) == self.GATES

    def test_rng_shuffles(self):
        gates = [(i, i + 1, 0.1) for i in range(0, 20, 2)]
        shuffled = order_edges(gates, rng=np.random.default_rng(0))
        assert sorted(shuffled) == sorted(gates)
        assert shuffled != gates  # astronomically unlikely to match

    def test_duplicate_pairs_consumed_in_order(self):
        gates = [(0, 1, 0.1), (0, 1, 0.9)]
        out = order_edges(gates, order=[(0, 1), (0, 1)])
        assert out == gates
