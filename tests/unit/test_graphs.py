"""Unit tests for the workload graph generators."""

import numpy as np
import pytest

from repro.qaoa.graphs import (
    ensure_no_isolated_qubits,
    erdos_renyi_fixed_edges,
    erdos_renyi_graph,
    graph_edges,
    random_regular_graph,
)


class TestErdosRenyi:
    def test_node_count(self, rng):
        g = erdos_renyi_graph(12, 0.5, rng)
        assert g.number_of_nodes() == 12

    def test_non_empty_by_default(self, rng):
        for _ in range(20):
            g = erdos_renyi_graph(4, 0.1, rng)
            assert g.number_of_edges() > 0

    def test_density_scales_with_p(self):
        rng = np.random.default_rng(0)
        sparse = np.mean(
            [erdos_renyi_graph(20, 0.1, rng).number_of_edges() for _ in range(20)]
        )
        dense = np.mean(
            [erdos_renyi_graph(20, 0.6, rng).number_of_edges() for _ in range(20)]
        )
        assert dense > 3 * sparse

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError, match="outside"):
            erdos_renyi_graph(5, 1.5, rng)

    def test_too_few_nodes(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            erdos_renyi_graph(1, 0.5, rng)

    def test_reproducible(self):
        a = erdos_renyi_graph(10, 0.4, np.random.default_rng(5))
        b = erdos_renyi_graph(10, 0.4, np.random.default_rng(5))
        assert graph_edges(a) == graph_edges(b)


class TestRegular:
    def test_degree_exact(self, rng):
        g = random_regular_graph(12, 3, rng)
        assert all(d == 3 for _, d in g.degree())

    def test_handshake_violation_rejected(self, rng):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3, rng)

    def test_degree_too_large(self, rng):
        with pytest.raises(ValueError, match=">= num_nodes"):
            random_regular_graph(4, 4, rng)

    def test_reproducible(self):
        a = random_regular_graph(10, 4, np.random.default_rng(5))
        b = random_regular_graph(10, 4, np.random.default_rng(5))
        assert graph_edges(a) == graph_edges(b)


class TestFixedEdges:
    def test_exact_edge_count(self, rng):
        """The Section VI workload: 8 nodes, exactly 8 edges."""
        g = erdos_renyi_fixed_edges(8, 8, rng)
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 8

    def test_bounds_checked(self, rng):
        with pytest.raises(ValueError, match="outside"):
            erdos_renyi_fixed_edges(4, 7, rng)  # max is 6


class TestHelpers:
    def test_graph_edges_normalised(self, rng):
        g = erdos_renyi_graph(6, 0.5, rng)
        for a, b in graph_edges(g):
            assert a < b

    def test_isolated_detection(self, rng):
        g = erdos_renyi_fixed_edges(5, 1, rng)
        assert not ensure_no_isolated_qubits(g)
        full = random_regular_graph(6, 3, rng)
        assert ensure_no_isolated_qubits(full)
