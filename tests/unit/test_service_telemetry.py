"""Unit tests for service telemetry: counters, histograms, percentiles."""

import pytest

from repro.service import Histogram, Telemetry, percentile


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_known_values(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 95) == pytest.approx(95.05)
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_matches_numpy_linear(self):
        import numpy as np

        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
        for q in (10, 50, 77, 95, 99):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == percentile(
            [1.0, 3.0, 5.0], 50
        )


class TestHistogram:
    def test_summary_tracks_extremes_and_mean(self):
        hist = Histogram()
        for v in (10.0, 20.0, 30.0):
            hist.record(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(20.0)
        assert summary["min"] == 10.0
        assert summary["max"] == 30.0
        assert summary["p50"] == pytest.approx(20.0)

    def test_empty_summary_is_zeros(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_reservoir_bounds_memory(self):
        hist = Histogram(reservoir_size=100)
        for v in range(10_000):
            hist.record(float(v))
        assert hist.count == 10_000
        assert len(hist._values) == 100
        # Reservoir sampling keeps the quantiles representative.
        assert 3000 < hist.quantile(50) < 7000

    def test_exact_percentiles_under_reservoir_size(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.record(float(v))
        assert hist.quantile(95) == pytest.approx(95.05)
        assert hist.quantile(99) == pytest.approx(99.01)

    def test_invalid_reservoir_rejected(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)


class TestTelemetry:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.incr("jobs.ok")
        t.incr("jobs.ok", by=2)
        assert t.counter("jobs.ok") == 3
        assert t.counter("missing") == 0

    def test_snapshot_shape(self):
        t = Telemetry()
        t.incr("a")
        t.observe("lat", 5.0)
        snap = t.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        assert {"p50", "p95", "p99"} <= set(snap["histograms"]["lat"])

    def test_snapshot_is_json_safe(self):
        import json

        t = Telemetry()
        t.incr("a")
        t.observe("lat", 1.25)
        json.dumps(t.snapshot())

    def test_render_includes_names(self):
        t = Telemetry()
        t.incr("jobs.ok")
        t.observe("job_latency_ms", 3.0)
        text = t.render()
        assert "jobs.ok" in text
        assert "job_latency_ms" in text
        assert "p95" in text

    def test_render_empty(self):
        assert "no telemetry" in Telemetry().render()
