"""Unit tests for the gate registry and Instruction value objects."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    GATES,
    IBM_BASIS,
    QAOA_BASIS,
    Instruction,
    gate_spec,
    is_known_gate,
)


def _is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-10)


class TestGateSpecs:
    def test_all_registered_matrices_are_unitary(self):
        params = {0: (), 1: (0.7,), 2: (0.4, 1.1), 3: (0.3, 0.8, -0.5)}
        for spec in GATES.values():
            if not spec.is_unitary:
                continue
            m = spec.matrix(params[spec.num_params])
            assert m.shape == (2 ** spec.num_qubits,) * 2
            assert _is_unitary(m)

    def test_matrix_dimension_matches_arity(self):
        assert gate_spec("h").matrix().shape == (2, 2)
        assert gate_spec("cnot").matrix().shape == (4, 4)

    def test_self_inverse_flags_are_correct(self):
        for spec in GATES.values():
            if spec.self_inverse:
                m = spec.matrix(())
                assert np.allclose(m @ m, np.eye(m.shape[0]), atol=1e-10)

    def test_cnot_convention_control_is_lsb(self):
        # |control=1, target=0> is index 1 (little endian); CNOT maps it
        # to |control=1, target=1> = index 3.
        m = gate_spec("cnot").matrix()
        state = np.zeros(4)
        state[1] = 1.0
        out = m @ state
        assert abs(out[3]) == pytest.approx(1.0)

    def test_cphase_is_diagonal_zz_interaction(self):
        theta = 0.9
        m = gate_spec("cphase").matrix((theta,))
        zz = np.diag([1, -1, -1, 1])
        expected = np.diag(np.exp(-1j * theta / 2 * np.diag(zz)))
        np.testing.assert_allclose(m, expected, atol=1e-12)

    def test_cphase_commutes_with_itself_on_shared_qubit(self):
        # The commutation property the whole paper rests on: diagonal
        # two-qubit phase gates commute even when they overlap.
        a = gate_spec("cphase").matrix((0.7,))
        b = gate_spec("cphase").matrix((1.3,))
        np.testing.assert_allclose(a @ b, b @ a, atol=1e-12)

    def test_matrix_wrong_param_count_raises(self):
        with pytest.raises(ValueError, match="parameter"):
            gate_spec("rx").matrix(())
        with pytest.raises(ValueError, match="parameter"):
            gate_spec("h").matrix((0.1,))

    def test_non_unitary_gate_matrix_raises(self):
        with pytest.raises(ValueError, match="no matrix"):
            gate_spec("measure").matrix(())

    def test_u3_generalises_u2_and_u1(self):
        phi, lam = 0.4, -0.9
        np.testing.assert_allclose(
            gate_spec("u2").matrix((phi, lam)),
            gate_spec("u3").matrix((math.pi / 2, phi, lam)),
            atol=1e-12,
        )

    def test_gate_spec_unknown_name(self):
        with pytest.raises(KeyError, match="unknown gate"):
            gate_spec("toffoli")

    def test_is_known_gate(self):
        assert is_known_gate("cnot")
        assert not is_known_gate("ccx")

    def test_basis_sets_contain_only_known_gates(self):
        assert IBM_BASIS <= set(GATES) | {"barrier", "measure"}
        assert QAOA_BASIS <= set(GATES) | {"barrier", "measure"}


class TestInstruction:
    def test_construction_normalises_types(self):
        inst = Instruction("rx", (np.int64(2),), (np.float64(0.5),))
        assert inst.qubits == (2,)
        assert isinstance(inst.qubits[0], int)
        assert inst.params == (0.5,)

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="acts on 2 qubit"):
            Instruction("cnot", (0,))

    def test_duplicate_qubits_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            Instruction("cnot", (1, 1))

    def test_negative_qubit_raises(self):
        with pytest.raises(ValueError, match="negative"):
            Instruction("h", (-1,))

    def test_wrong_params_raise(self):
        with pytest.raises(ValueError, match="parameter"):
            Instruction("rx", (0,), ())

    def test_equality_and_hash(self):
        a = Instruction("cphase", (0, 1), (0.5,))
        b = Instruction("cphase", (0, 1), (0.5,))
        c = Instruction("cphase", (1, 0), (0.5,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_remap(self):
        inst = Instruction("cnot", (0, 1))
        remapped = inst.remap({0: 5, 1: 3})
        assert remapped.qubits == (5, 3)
        # missing keys keep their index
        assert inst.remap({0: 2}).qubits == (2, 1)

    def test_is_two_qubit(self):
        assert Instruction("cnot", (0, 1)).is_two_qubit
        assert not Instruction("h", (0,)).is_two_qubit
        assert not Instruction("measure", (0,)).is_two_qubit

    def test_directive_and_measurement_flags(self):
        assert Instruction("barrier", (0, 1, 2)).is_directive
        assert Instruction("measure", (0,)).is_measurement
        assert not Instruction("h", (0,)).is_directive

    def test_commutes_trivially_with(self):
        a = Instruction("cphase", (0, 1), (0.3,))
        b = Instruction("cphase", (2, 3), (0.3,))
        c = Instruction("cphase", (1, 2), (0.3,))
        assert a.commutes_trivially_with(b)
        assert not a.commutes_trivially_with(c)

    def test_str_rendering(self):
        assert str(Instruction("cnot", (0, 1))) == "cnot 0, 1"
        assert "rx(0.5)" in str(Instruction("rx", (2,), (0.5,)))

    def test_barrier_accepts_any_arity(self):
        Instruction("barrier", (0,))
        Instruction("barrier", tuple(range(10)))
