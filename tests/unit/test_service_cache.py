"""Unit tests for the content-addressed result cache."""

import json
import pathlib

import pytest

from repro.service import ResultCache
from repro.store import shard_for


def _payload(tag: str, size: int = 0, version: int = 1) -> str:
    body = {"format_version": version, "tag": tag, "pad": "x" * size}
    return json.dumps(body)


class TestMemoryLru:
    def test_get_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", _payload("a"))
        assert json.loads(cache.get("k"))["tag"] == "a"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_entry_budget_evicts_lru(self):
        cache = ResultCache(max_entries=2, max_bytes=None)
        cache.put("a", _payload("a"))
        cache.put("b", _payload("b"))
        cache.get("a")  # promote a over b
        cache.put("c", _payload("c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts(self):
        one = _payload("a", size=400)
        budget = 2 * len(one.encode()) + 10
        cache = ResultCache(max_entries=None, max_bytes=budget)
        cache.put("a", _payload("a", size=400))
        cache.put("b", _payload("b", size=400))
        assert len(cache) == 2
        cache.put("c", _payload("c", size=400))
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.current_bytes <= budget

    def test_oversized_payload_skips_memory(self):
        cache = ResultCache(max_entries=None, max_bytes=64)
        cache.put("big", _payload("big", size=1000))
        assert len(cache) == 0

    def test_overwrite_updates_bytes(self):
        cache = ResultCache()
        cache.put("k", _payload("a", size=100))
        before = cache.current_bytes
        cache.put("k", _payload("a", size=10))
        assert cache.current_bytes < before
        assert len(cache) == 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", _payload("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        d = str(tmp_path / "cache")
        ResultCache(directory=d).put("k", _payload("a"))
        fresh = ResultCache(directory=d)
        assert json.loads(fresh.get("k"))["tag"] == "a"
        assert fresh.stats.disk_hits == 1

    def test_disk_hit_faults_into_memory(self, tmp_path):
        d = str(tmp_path / "cache")
        ResultCache(directory=d).put("k", _payload("a"))
        fresh = ResultCache(directory=d)
        fresh.get("k")
        fresh.get("k")
        assert fresh.stats.memory_hits == 1
        assert fresh.stats.disk_hits == 1

    def test_version_invalidation_deletes_stale_file(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "stale.json").write_text(_payload("old", version=99))
        cache = ResultCache(directory=str(d), expected_version=1)
        assert cache.get("stale") is None
        assert not (d / "stale.json").exists()
        assert cache.stats.invalidations == 1

    def test_corrupt_file_treated_as_stale(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "junk.json").write_text("{not json")
        cache = ResultCache(directory=str(d), expected_version=1)
        assert cache.get("junk") is None
        assert not (d / "junk.json").exists()

    def test_corrupt_file_quarantined_not_lost(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "junk.json").write_text('{"truncated": ')
        cache = ResultCache(directory=str(d))
        assert cache.get("junk") is None
        assert (d / "junk.json.corrupt").exists()
        assert cache.stats.invalidations == 1
        # The quarantined file no longer counts as a disk entry and a
        # fresh put for the same key works normally.
        assert cache.disk_entries() == 0
        cache.put("junk", _payload("fresh"))
        assert cache.get("junk") == _payload("fresh")

    def test_put_leaves_no_temp_files(self, tmp_path):
        d = tmp_path / "cache"
        cache = ResultCache(directory=str(d))
        for i in range(5):
            cache.put(f"k{i}", _payload(str(i)))
        assert list(pathlib.Path(d).glob("*.tmp")) == []
        assert cache.disk_entries() == 5

    def test_put_overwrites_atomically(self, tmp_path):
        d = tmp_path / "cache"
        cache = ResultCache(directory=str(d), max_entries=1)
        cache.put("k", _payload("first"))
        cache.put("k", _payload("second"))
        entry = pathlib.Path(d) / shard_for("k") / "k.json"
        assert entry.read_text() == _payload("second")

    def test_put_rejects_wrong_version(self, tmp_path):
        cache = ResultCache(
            directory=str(tmp_path / "cache"), expected_version=1
        )
        with pytest.raises(ValueError, match="format_version"):
            cache.put("k", _payload("bad", version=2))

    def test_prune_stale(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "good.json").write_text(_payload("good", version=1))
        (d / "old1.json").write_text(_payload("old", version=0))
        (d / "old2.json").write_text("garbage")
        cache = ResultCache(directory=str(d), expected_version=1)
        assert cache.prune_stale() == 2
        assert cache.disk_entries() == 1

    def test_prune_stale_sweeps_writer_debris(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "good.json").write_text(_payload("good", version=1))
        (d / "orphan.12345.678.tmp").write_text("partial write")
        (d / "bad.json.corrupt").write_text("{quarantined")
        cache = ResultCache(directory=str(d), expected_version=1)
        assert cache.prune_stale() == 2
        assert cache.disk_entries() == 1
        assert list(d.glob("*.tmp")) == []
        assert list(d.glob("*.corrupt")) == []

    def test_clear_disk(self, tmp_path):
        d = str(tmp_path / "cache")
        cache = ResultCache(directory=d)
        cache.put("k", _payload("a"))
        cache.clear(disk=True)
        assert cache.disk_entries() == 0

    def test_stats_snapshot_keys(self):
        snap = ResultCache().stats.snapshot()
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(snap)


class TestShardedFacade:
    """ResultCache as a facade over repro.store.ShardedDiskTier."""

    def test_legacy_flat_entry_still_readable_and_migrates(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "old.json").write_text(_payload("legacy"))
        cache = ResultCache(directory=str(d), expected_version=1)
        assert json.loads(cache.get("old"))["tag"] == "legacy"
        # The hit moved the entry into its shard.
        assert not (d / "old.json").exists()
        assert (d / shard_for("old") / "old.json").exists()

    def test_legacy_payload_byte_identical_after_migration(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        text = _payload("exact")
        (d / "k.json").write_text(text)
        cache = ResultCache(directory=str(d), expected_version=1)
        assert cache.get("k") == text
        # Warm read from the sharded path returns the same bytes.
        fresh = ResultCache(directory=str(d), expected_version=1)
        assert fresh.get("k") == text

    def test_shard_stats_exposed(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        cache.put("k", _payload("a"))
        fresh = ResultCache(directory=str(tmp_path / "cache"))
        fresh.get("k")
        stats = fresh.shard_stats()
        assert stats[shard_for("k")]["hits"] == 1

    def test_max_disk_bytes_evicts(self, tmp_path):
        one = _payload("a", size=400)
        budget = 2 * len(one.encode()) + 10
        cache = ResultCache(
            directory=str(tmp_path / "cache"),
            max_entries=None,
            max_bytes=None,
            max_disk_bytes=budget,
        )
        cache.put("a", _payload("a", size=400))
        cache.put("b", _payload("b", size=400))
        cache.put("c", _payload("c", size=400))
        assert cache.disk_entries() <= 2
        assert cache.disk_bytes() <= budget

    def test_max_disk_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(directory=str(tmp_path), max_disk_bytes=0)


class TestQuarantineCounter:
    def test_quarantine_increments_dedicated_counter(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "bad.json").write_text('{"truncated": ')
        cache = ResultCache(directory=str(d))
        assert cache.stats.quarantines == 0
        assert cache.get("bad") is None
        assert cache.stats.quarantines == 1
        assert cache.stats.snapshot()["quarantines"] == 1

    def test_plain_miss_does_not_quarantine(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        assert cache.get("absent") is None
        assert cache.stats.quarantines == 0
