"""Unit tests for the service job model: hashing, JSONL I/O, execution."""

import json

import pytest

from repro.hardware import (
    ibmq_16_melbourne,
    melbourne_calibration,
    ring_device,
)
from repro.qaoa import MaxCutProblem
from repro.qaoa.problems import Level, QAOAProgram
from repro.service import (
    CompileJob,
    decode_envelope,
    execute_job,
    job_from_dict,
    job_to_dict,
    load_jobs_jsonl,
)


@pytest.fixture
def program():
    problem = MaxCutProblem(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    return problem.to_program([0.7], [0.35])


def _job(program, **kwargs):
    defaults = dict(program=program, device="ibmq_20_tokyo")
    defaults.update(kwargs)
    return CompileJob(**defaults)


class TestContentHash:
    def test_stable_across_calls(self, program):
        job = _job(program)
        assert job.content_hash() == job.content_hash()

    def test_edge_order_invariant(self, program):
        shuffled = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=list(program.edges)[::-1],
            levels=program.levels,
        )
        assert _job(program).content_hash() == _job(shuffled).content_hash()

    def test_endpoint_order_invariant(self, program):
        flipped = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=[(b, a, w) for a, b, w in program.edges],
            levels=program.levels,
        )
        assert _job(program).content_hash() == _job(flipped).content_hash()

    def test_seed_distinct(self, program):
        assert (
            _job(program, seed=0).content_hash()
            != _job(program, seed=1).content_hash()
        )

    @pytest.mark.parametrize(
        "knob, value",
        [
            ("method", "ip"),
            ("packing_limit", 4),
            ("router", "sabre"),
            ("device", "ibmq_16_melbourne"),
        ],
    )
    def test_knobs_distinct(self, program, knob, value):
        assert (
            _job(program).content_hash()
            != _job(program, **{knob: value}).content_hash()
        )

    def test_weight_changes_hash(self, program):
        reweighted = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=[(a, b, w * 2.0) for a, b, w in program.edges],
            levels=program.levels,
        )
        assert (
            _job(program).content_hash() != _job(reweighted).content_hash()
        )

    def test_level_params_change_hash(self, program):
        retuned = QAOAProgram(
            num_qubits=program.num_qubits,
            edges=program.edges,
            levels=[Level(0.9, 0.1)],
        )
        assert _job(program).content_hash() != _job(retuned).content_hash()

    def test_job_id_excluded(self, program):
        assert (
            _job(program, job_id="a").content_hash()
            == _job(program, job_id="b").content_hash()
        )

    def test_inline_device_vs_name_distinct(self, program):
        # Conservative: an inline graph hashes by content, a name by name.
        inline = _job(program, device=ring_device(8))
        named = _job(program, device="ring_8")
        assert inline.content_hash() != named.content_hash()

    def test_calibration_object_hashes_by_content(self, program):
        cal = melbourne_calibration()
        a = _job(program, device=ibmq_16_melbourne(), calibration=cal)
        b = _job(
            program,
            device=ibmq_16_melbourne(),
            calibration=melbourne_calibration(),
        )
        assert a.content_hash() == b.content_hash()


class TestExecuteJob:
    def test_success_produces_payload_and_metrics(self, program):
        result = execute_job(_job(program))
        assert result.ok
        assert result.metrics["depth"] > 0
        metrics, compiled_json = decode_envelope(result.payload)
        assert metrics == result.metrics
        assert json.loads(compiled_json)["kind"] == "qaoa"

    def test_compiled_round_trip(self, program):
        result = execute_job(_job(program))
        compiled = result.compiled()
        assert compiled.depth() == result.metrics["depth"]
        assert compiled.gate_count() == result.metrics["gate_count"]

    def test_unknown_device_is_structured_error(self, program):
        result = execute_job(_job(program, device="nonexistent"))
        assert not result.ok
        assert result.error_kind == "invalid"
        assert "nonexistent" in result.error

    def test_unknown_method_is_structured_error(self, program):
        result = execute_job(_job(program, method="telepathy"))
        assert not result.ok
        assert result.error_kind == "invalid"

    def test_vic_auto_calibration(self, program):
        result = execute_job(
            _job(
                program,
                device="ibmq_16_melbourne",
                method="vic",
                calibration="auto",
            )
        )
        assert result.ok
        assert result.metrics["success_probability"] is not None

    def test_failed_result_refuses_compiled(self, program):
        result = execute_job(_job(program, device="nonexistent"))
        with pytest.raises(ValueError, match="no compiled result"):
            result.compiled()


def _dirty_melbourne_payload():
    payload = {
        f"{a}-{b}": err
        for (a, b), err in melbourne_calibration().cnot_error.items()
    }
    payload["0-1"] = float("nan")
    payload["2-3"] = 7.5  # out of range
    return {"cnot_error": payload}


class TestDegradedCalibration:
    def test_dirty_feed_repaired_with_warnings(self, program):
        result = execute_job(
            _job(
                program,
                device="ibmq_16_melbourne",
                method="vic",
                calibration=_dirty_melbourne_payload(),
            )
        )
        assert result.ok
        assert result.warnings
        assert any("repaired" in w for w in result.warnings)
        assert result.metrics["warnings"] == result.warnings
        assert result.metrics["success_probability"] is not None

    def test_warnings_survive_record_round_trip(self, program):
        result = execute_job(
            _job(
                program,
                device="ibmq_16_melbourne",
                method="vic",
                calibration=_dirty_melbourne_payload(),
            )
        )
        record = result.to_record()
        assert record["warnings"] == result.warnings

    def test_clean_feed_has_no_warnings(self, program):
        result = execute_job(
            _job(
                program,
                device="ibmq_16_melbourne",
                method="vic",
                calibration="auto",
            )
        )
        assert result.ok
        assert result.warnings == []

    def test_unrepairable_feed_is_structured_error(self, program):
        device = ring_device(5)
        disconnected = type(device)(
            5, [(0, 1), (1, 2), (3, 4)], name="split5"
        )
        payload = {
            "cnot_error": {"0-1": float("nan"), "1-2": 0.01, "3-4": 0.01}
        }
        result = execute_job(
            _job(program, device=disconnected, calibration=payload)
        )
        assert not result.ok
        assert result.error_kind == "invalid"
        assert "disconnected" in result.error


class TestJsonl:
    def test_round_trip(self, program):
        job = _job(program, method="ip", packing_limit=4, job_id="x1")
        restored = job_from_dict(job_to_dict(job))
        assert restored.content_hash() == job.content_hash()
        assert restored.job_id == "x1"

    def test_problem_spec_is_deterministic(self):
        spec = {
            "problem": {"family": "er", "nodes": 10, "param": 0.5, "seed": 7},
            "device": "ibmq_20_tokyo",
        }
        a = job_from_dict(dict(spec))
        b = job_from_dict(dict(spec))
        assert a.content_hash() == b.content_hash()

    def test_loader_skips_comments_and_blanks(self):
        lines = [
            "# a comment",
            "",
            json.dumps(
                {
                    "program": {
                        "num_qubits": 3,
                        "edges": [[0, 1], [1, 2]],
                    },
                    "device": "ring_8",
                }
            ),
        ]
        jobs = load_jobs_jsonl(lines)
        assert len(jobs) == 1
        assert jobs[0].program.num_qubits == 3

    def test_loader_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            load_jobs_jsonl(["# ok", '{"device": "ring_8"}'])

    def test_inline_device_round_trip(self, program):
        job = _job(program, device=ring_device(8))
        restored = job_from_dict(job_to_dict(job))
        assert restored.content_hash() == job.content_hash()

    def test_calibration_round_trip(self, program):
        job = _job(
            program,
            device=ibmq_16_melbourne(),
            method="vic",
            calibration=melbourne_calibration(),
        )
        restored = job_from_dict(job_to_dict(job))
        assert restored.content_hash() == job.content_hash()
        result = execute_job(restored)
        assert result.ok
