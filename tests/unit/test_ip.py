"""Unit tests for IP bin-packing — including the Figure 4 worked example."""

import numpy as np
import pytest

from repro.compiler.ip import fill_single_layer, parallelize

FIG4_PAIRS = [(1, 5), (2, 3), (1, 4), (2, 4)]


class TestFigure4Example:
    def test_two_layers_formed(self):
        """MOQ = 2, and the greedy fill achieves exactly 2 layers."""
        result = parallelize(FIG4_PAIRS)
        assert result.num_layers == 2
        assert result.rounds == 1

    def test_layer_contents_match_figure4f(self):
        """Deterministic fill: L1 = {(1,4), (2,3)}, L2 = {(2,4), (1,5)}."""
        result = parallelize(FIG4_PAIRS)
        assert set(result.layers[0]) == {(1, 4), (2, 3)}
        assert set(result.layers[1]) == {(2, 4), (1, 5)}

    def test_ordered_pairs_sequence(self):
        """Figure 4(d)'s compiler input: (1,4), (2,3), (2,4), (1,5)."""
        result = parallelize(FIG4_PAIRS)
        assert result.ordered_pairs == [(1, 4), (2, 3), (2, 4), (1, 5)]


class TestGeneralPacking:
    def test_all_gates_preserved(self):
        rng = np.random.default_rng(0)
        pairs = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3), (0, 2)]
        result = parallelize(pairs, rng=rng)
        assert sorted(result.ordered_pairs) == sorted(pairs)

    def test_layers_never_reuse_a_qubit(self):
        rng = np.random.default_rng(1)
        pairs = [(a, b) for a in range(8) for b in range(a + 1, 8)]
        result = parallelize(pairs, rng=rng)
        result.validate()

    def test_num_layers_at_least_moq(self):
        pairs = [(0, 1), (0, 2), (0, 3), (0, 4)]  # star: MOQ = 4
        result = parallelize(pairs)
        assert result.num_layers == 4

    def test_triangle_needs_second_round(self):
        """K3 has MOQ 2 but needs 3 layers — Step 4's restart fires."""
        result = parallelize([(0, 1), (1, 2), (0, 2)])
        assert result.num_layers == 3
        assert result.rounds == 2

    def test_duplicate_pairs_supported(self):
        result = parallelize([(0, 1), (0, 1)])
        assert result.num_layers == 2
        assert result.ordered_pairs == [(0, 1), (0, 1)]

    def test_empty_input(self):
        result = parallelize([])
        assert result.layers == []
        assert result.ordered_pairs == []

    def test_random_tiebreak_reproducible(self):
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7)]
        a = parallelize(pairs, rng=np.random.default_rng(7))
        b = parallelize(pairs, rng=np.random.default_rng(7))
        assert a.layers == b.layers

    def test_perfect_matching_packs_into_one_layer(self):
        pairs = [(0, 1), (2, 3), (4, 5)]
        result = parallelize(pairs)
        assert result.num_layers == 1

    def test_packing_limit_caps_layer_size(self):
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7)]
        result = parallelize(pairs, packing_limit=2)
        assert all(len(layer) <= 2 for layer in result.layers)
        assert result.num_layers == 2

    def test_packing_limit_one_serialises(self):
        pairs = [(0, 1), (2, 3), (4, 5)]
        result = parallelize(pairs, packing_limit=1)
        assert result.num_layers == 3

    def test_invalid_packing_limit(self):
        with pytest.raises(ValueError, match="packing_limit"):
            parallelize([(0, 1)], packing_limit=0)


class TestFillSingleLayer:
    def test_first_fit_respects_order(self):
        layer, rest = fill_single_layer([(0, 1), (0, 2), (2, 3)])
        assert layer == [(0, 1), (2, 3)]
        assert rest == [(0, 2)]

    def test_packing_limit(self):
        layer, rest = fill_single_layer(
            [(0, 1), (2, 3), (4, 5)], packing_limit=2
        )
        assert layer == [(0, 1), (2, 3)]
        assert rest == [(4, 5)]

    def test_empty(self):
        assert fill_single_layer([]) == ([], [])

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            fill_single_layer([(0, 1)], packing_limit=0)

    def test_remaining_preserves_order(self):
        layer, rest = fill_single_layer([(0, 1), (1, 2), (0, 3), (1, 3)])
        assert layer == [(0, 1)]
        assert rest == [(1, 2), (0, 3), (1, 3)]
