"""Unit tests for the noise model and trajectory simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.hardware import linear_device, uniform_calibration
from repro.sim.noise import NoiseModel, NoisySimulator


def _ghz(n):
    qc = QuantumCircuit(n).h(0)
    for i in range(n - 1):
        qc.cnot(i, i + 1)
    return qc.measure_all()


class TestNoiseModel:
    def test_from_calibration(self):
        cal = uniform_calibration(
            linear_device(3),
            cnot_error=0.05,
            single_qubit_error=0.001,
            readout_error=0.02,
        )
        model = NoiseModel.from_calibration(cal)
        assert model.two_qubit_prob(0, 1) == pytest.approx(0.05)
        assert model.two_qubit_prob(1, 0) == pytest.approx(0.05)
        assert model.single_qubit_depol[2] == pytest.approx(0.001)
        assert model.readout_flip[0] == pytest.approx(0.02)

    def test_unknown_edge_is_noiseless(self):
        model = NoiseModel.ideal(3)
        assert model.two_qubit_prob(0, 2) == 0.0

    def test_ideal_model(self):
        model = NoiseModel.ideal(2)
        assert all(p == 0 for p in model.single_qubit_depol.values())

    def test_scaled(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        model = NoiseModel.from_calibration(cal).scaled(2.0)
        assert model.two_qubit_prob(0, 1) == pytest.approx(0.2)

    def test_scaled_clips_to_one(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.4)
        model = NoiseModel.from_calibration(cal).scaled(10.0)
        assert model.two_qubit_prob(0, 1) < 1.0


class TestNoisySimulator:
    def test_ideal_noise_matches_statevector(self):
        qc = _ghz(3)
        noisy = NoisySimulator(NoiseModel.ideal(3), trajectories=4)
        counts = noisy.sample_counts(qc, 1000, np.random.default_rng(1))
        assert set(counts) == {"000", "111"}
        assert abs(counts["000"] - 500) < 100

    def test_noise_degrades_ghz_fidelity(self):
        cal = uniform_calibration(linear_device(4), cnot_error=0.1)
        noisy = NoisySimulator(
            NoiseModel.from_calibration(cal), trajectories=32
        )
        counts = noisy.sample_counts(_ghz(4), 2000, np.random.default_rng(2))
        good = counts.get("0000", 0) + counts.get("1111", 0)
        assert good < 2000  # errors must appear
        assert good > 1000  # but the signal survives at 10% error

    def test_readout_error_flips_bits(self):
        model = NoiseModel(
            two_qubit_depol={},
            single_qubit_depol={0: 0.0},
            readout_flip={0: 1.0},  # always flip
        )
        noisy = NoisySimulator(model, trajectories=1)
        counts = noisy.sample_counts(
            QuantumCircuit(1).measure(0), 50, np.random.default_rng(0)
        )
        assert counts == {"1": 50}

    def test_shot_count_preserved_across_trajectories(self):
        noisy = NoisySimulator(NoiseModel.ideal(2), trajectories=7)
        counts = noisy.sample_counts(
            QuantumCircuit(2).h(0), 100, np.random.default_rng(0)
        )
        assert sum(counts.values()) == 100

    def test_more_trajectories_than_shots_is_fine(self):
        noisy = NoisySimulator(NoiseModel.ideal(1), trajectories=64)
        counts = noisy.sample_counts(
            QuantumCircuit(1).h(0), 10, np.random.default_rng(0)
        )
        assert sum(counts.values()) == 10

    def test_reproducible_with_seed(self):
        cal = uniform_calibration(linear_device(3), cnot_error=0.05)
        noisy = NoisySimulator(NoiseModel.from_calibration(cal), trajectories=8)
        a = noisy.sample_counts(_ghz(3), 200, np.random.default_rng(5))
        b = noisy.sample_counts(_ghz(3), 200, np.random.default_rng(5))
        assert a == b

    def test_invalid_shots(self):
        noisy = NoisySimulator(NoiseModel.ideal(1))
        with pytest.raises(ValueError, match="shots"):
            noisy.sample_indices(QuantumCircuit(1).h(0), 0)

    def test_invalid_trajectories(self):
        with pytest.raises(ValueError, match="trajectory"):
            NoisySimulator(NoiseModel.ideal(1), trajectories=0)

    def test_trajectory_state_is_normalised(self):
        cal = uniform_calibration(linear_device(3), cnot_error=0.5)
        noisy = NoisySimulator(NoiseModel.from_calibration(cal))
        state = noisy.run_trajectory(_ghz(3), np.random.default_rng(3))
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_depolarizing_spreads_probability(self):
        # With certain depolarization after the only gate, outcomes other
        # than the ideal |1> must appear.
        model = NoiseModel(
            two_qubit_depol={},
            single_qubit_depol={0: 1.0},
            readout_flip={0: 0.0},
        )
        noisy = NoisySimulator(model, trajectories=200)
        counts = noisy.sample_counts(
            QuantumCircuit(1).x(0).measure(0), 600, np.random.default_rng(7)
        )
        assert counts.get("0", 0) > 0
        assert counts.get("1", 0) > 0
