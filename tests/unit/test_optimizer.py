"""Unit tests for the hybrid optimisation loop."""

import numpy as np
import pytest

from repro.qaoa.analytic import analytic_optimal_parameters
from repro.qaoa.optimizer import optimize_qaoa, qaoa_expectation
from repro.qaoa.problems import MaxCutProblem


@pytest.fixture
def ring5():
    return MaxCutProblem(5, [(i, (i + 1) % 5) for i in range(5)])


class TestQaoaExpectation:
    def test_zero_angles(self, ring5):
        # gamma = beta = 0 leaves |+...+>: every edge cut half the time.
        assert qaoa_expectation(ring5, [0.0], [0.0]) == pytest.approx(2.5)

    def test_multi_level(self, ring5):
        value = qaoa_expectation(ring5, [0.4, 0.2], [0.3, 0.1])
        assert 0.0 <= value <= ring5.max_cut_value()


class TestOptimizeQaoa:
    def test_p1_analytic_path_matches_simulated_objective(self, ring5):
        result = optimize_qaoa(ring5, p=1)
        simulated = qaoa_expectation(ring5, result.gammas, result.betas)
        assert result.expectation == pytest.approx(simulated, abs=1e-8)
        assert result.evaluations == 0  # analytic fast path used

    def test_p1_simulated_path_agrees_with_analytic(self, ring5):
        rng = np.random.default_rng(0)
        sim = optimize_qaoa(ring5, p=1, rng=rng, use_analytic=False, restarts=4)
        _, _, analytic_best = analytic_optimal_parameters(ring5)
        assert sim.expectation == pytest.approx(analytic_best, abs=1e-3)
        assert sim.evaluations > 0

    def test_p2_at_least_as_good_as_p1(self, ring5):
        rng = np.random.default_rng(1)
        p1 = optimize_qaoa(ring5, p=1)
        p2 = optimize_qaoa(ring5, p=2, rng=rng, restarts=4)
        assert p2.expectation >= p1.expectation - 1e-4

    def test_approximation_ratio_bounds(self, ring5):
        result = optimize_qaoa(ring5, p=1)
        assert 0.5 <= result.approximation_ratio <= 1.0

    def test_parameter_counts_match_p(self, ring5):
        result = optimize_qaoa(
            ring5, p=2, rng=np.random.default_rng(2), restarts=1
        )
        assert len(result.gammas) == 2
        assert len(result.betas) == 2

    def test_invalid_p(self, ring5):
        with pytest.raises(ValueError, match="p must be"):
            optimize_qaoa(ring5, p=0)

    def test_weighted_problem_skips_analytic(self):
        problem = MaxCutProblem(3, [(0, 1, 2.0), (1, 2, 1.0)])
        result = optimize_qaoa(
            problem, p=1, rng=np.random.default_rng(3), restarts=2
        )
        assert result.evaluations > 0
        assert result.expectation <= problem.max_cut_value() + 1e-9

    def test_reproducible_with_seed(self, ring5):
        a = optimize_qaoa(
            ring5, p=1, use_analytic=False, rng=np.random.default_rng(7),
            restarts=2,
        )
        b = optimize_qaoa(
            ring5, p=1, use_analytic=False, rng=np.random.default_rng(7),
            restarts=2,
        )
        assert a.gammas == b.gammas
        assert a.betas == b.betas
