"""Unit tests for SWAP routing."""


from repro.compiler.mapping import Mapping
from repro.compiler.routing import route_pair
from repro.hardware import CouplingGraph, linear_device, ring_device


class TestAdjacentPairs:
    def test_no_swaps_when_adjacent(self):
        g = linear_device(4)
        m = Mapping.trivial(4, 4)
        result = route_pair(g, m, 0, 1)
        assert result.num_swaps == 0
        assert result.physical_pair == (0, 1)
        assert m.as_dict() == {0: 0, 1: 1, 2: 2, 3: 3}


class TestDistantPairs:
    def test_distance_k_needs_k_minus_1_swaps_on_a_line(self):
        for k in range(2, 6):
            g = linear_device(k + 1)
            m = Mapping.trivial(k + 1, k + 1)
            result = route_pair(g, m, 0, k)
            assert result.num_swaps == k - 1

    def test_endpoints_adjacent_after_routing(self):
        g = ring_device(8)
        m = Mapping.trivial(8, 8)
        result = route_pair(g, m, 0, 4)
        pa, pb = m.physical(0), m.physical(4)
        assert g.has_edge(pa, pb)
        assert result.physical_pair == (pa, pb) or result.physical_pair == (pb, pa) or g.has_edge(*result.physical_pair)

    def test_swaps_are_on_coupled_edges(self):
        g = ring_device(10)
        m = Mapping.trivial(10, 10)
        result = route_pair(g, m, 0, 5)
        for swap in result.swaps:
            assert swap.name == "swap"
            assert g.has_edge(*swap.qubits)

    def test_mapping_stays_injective(self):
        g = linear_device(6)
        m = Mapping.trivial(6, 6)
        route_pair(g, m, 0, 5)
        values = list(m.as_dict().values())
        assert len(set(values)) == 6

    def test_both_ends_move_inward(self):
        # Distance-4 pair on a line: swaps alternate from both ends.
        g = linear_device(5)
        m = Mapping.trivial(5, 5)
        route_pair(g, m, 0, 4)
        # Neither endpoint should have travelled the whole path.
        assert m.physical(0) != 0 or m.physical(4) != 4
        assert abs(m.physical(0) - m.physical(4)) == 1


class TestWeightedRouting:
    def test_distance_matrix_steers_path(self):
        # Square 0-1-2-3-0 with a horrible 0-3 edge: routing 0 to 2 must
        # go through 1, never through 3.
        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        weights = {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (0, 3): 50.0}
        dist = g.weighted_distance_matrix(weights)
        m = Mapping.trivial(4, 4)
        result = route_pair(g, m, 0, 2, dist=dist)
        assert result.num_swaps == 1
        swap_edge = tuple(sorted(result.swaps[0].qubits))
        assert swap_edge in {(0, 1), (1, 2)}

    def test_hop_routing_may_use_either_side(self):
        g = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        m = Mapping.trivial(4, 4)
        result = route_pair(g, m, 0, 2)
        assert result.num_swaps == 1


class TestThroughEmptyQubits:
    def test_routing_through_unoccupied_physical_qubits(self):
        g = linear_device(5)
        m = Mapping({0: 0, 1: 4}, 5)  # middle of the line is empty
        result = route_pair(g, m, 0, 1)
        assert result.num_swaps == 3
        assert g.has_edge(m.physical(0), m.physical(1))
