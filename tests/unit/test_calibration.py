"""Unit tests for calibration data and derived reliability tables."""

import numpy as np
import pytest

from repro.hardware import (
    Calibration,
    linear_device,
    random_calibration,
    uniform_calibration,
)
from repro.hardware.devices import (
    FIGURE6_CPHASE_SUCCESS,
    figure6_calibration,
    ibmq_16_melbourne,
    melbourne_calibration,
)


class TestValidation:
    def test_missing_edge_rejected(self):
        g = linear_device(3)
        with pytest.raises(ValueError, match="missing CNOT calibration"):
            Calibration(g, {(0, 1): 0.01})

    def test_unknown_edge_rejected(self):
        g = linear_device(3)
        with pytest.raises(ValueError, match="non-existent"):
            Calibration(g, {(0, 1): 0.01, (1, 2): 0.01, (0, 2): 0.01})

    def test_error_out_of_range_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError, match="outside"):
            Calibration(g, {(0, 1): 1.5})

    def test_negative_error_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError, match="outside"):
            Calibration(g, {(0, 1): -0.1})

    def test_nan_error_rejected_with_repair_hint(self):
        g = linear_device(2)
        with pytest.raises(ValueError, match="not finite"):
            Calibration(g, {(0, 1): float("nan")})
        try:
            Calibration(g, {(0, 1): float("nan")})
        except ValueError as exc:
            assert "repair" in str(exc)

    def test_inf_error_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError, match="not finite"):
            Calibration(g, {(0, 1): float("inf")})

    def test_nan_qubit_rate_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError, match="not finite"):
            Calibration(
                g,
                {(0, 1): 0.01},
                single_qubit_error={0: float("nan")},
            )

    def test_edge_key_normalisation(self):
        g = linear_device(2)
        cal = Calibration(g, {(1, 0): 0.02})
        assert cal.cnot_error_rate(0, 1) == pytest.approx(0.02)
        assert cal.cnot_error_rate(1, 0) == pytest.approx(0.02)

    def test_bad_single_qubit_rate_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError):
            Calibration(g, {(0, 1): 0.01}, single_qubit_error={0: 2.0})

    def test_out_of_range_qubit_rejected(self):
        g = linear_device(2)
        with pytest.raises(ValueError):
            Calibration(g, {(0, 1): 0.01}, readout_error={5: 0.1})


class TestDerivedQuantities:
    def test_cnot_success_is_one_minus_error(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        assert cal.cnot_success(0, 1) == pytest.approx(0.9)

    def test_cphase_success_is_two_cnots(self):
        """Section IV-D: 0.9 CNOT success -> ~0.81 CPHASE success."""
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        assert cal.cphase_success(0, 1) == pytest.approx(0.81)

    def test_swap_success_is_three_cnots(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        assert cal.swap_success(0, 1) == pytest.approx(0.9 ** 3)

    def test_unknown_coupling_raises(self):
        cal = uniform_calibration(linear_device(3))
        with pytest.raises(KeyError):
            cal.cnot_error_rate(0, 2)

    def test_vic_edge_weights_are_inverse_success(self):
        cal = uniform_calibration(linear_device(2), cnot_error=0.1)
        weights = cal.vic_edge_weights()
        assert weights[(0, 1)] == pytest.approx(1.0 / 0.81)

    def test_vic_distance_matrix_orders_by_reliability(self):
        g = linear_device(3)
        cal = Calibration(g, {(0, 1): 0.01, (1, 2): 0.2})
        dist = cal.vic_distance_matrix()
        assert dist[0, 1] < dist[1, 2]

    def test_best_and_worst_edge(self):
        g = linear_device(3)
        cal = Calibration(g, {(0, 1): 0.01, (1, 2): 0.2})
        assert cal.best_edge() == (0, 1)
        assert cal.worst_edge() == (1, 2)

    def test_mean_cnot_error(self):
        g = linear_device(3)
        cal = Calibration(g, {(0, 1): 0.02, (1, 2): 0.04})
        assert cal.mean_cnot_error() == pytest.approx(0.03)

    def test_readout_and_single_qubit_defaults(self):
        cal = Calibration(linear_device(2), {(0, 1): 0.01})
        assert cal.single_qubit_success(0) == 1.0
        assert cal.readout_fidelity(1) == 1.0


class TestGenerators:
    def test_uniform_covers_all_edges(self):
        g = ibmq_16_melbourne()
        cal = uniform_calibration(g, cnot_error=0.03)
        for e in g.edges:
            assert cal.cnot_error[e] == 0.03

    def test_random_calibration_statistics(self):
        """Figure 11(a) model: N(1e-2, 0.5e-2) clipped."""
        g = ibmq_16_melbourne()
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(50):
            cal = random_calibration(g, rng=rng)
            samples.extend(cal.cnot_error.values())
        samples = np.array(samples)
        assert abs(samples.mean() - 1.0e-2) < 2e-3
        assert samples.min() >= 1.0e-3
        assert samples.max() < 0.5

    def test_random_calibration_reproducible(self):
        g = linear_device(4)
        a = random_calibration(g, rng=np.random.default_rng(9))
        b = random_calibration(g, rng=np.random.default_rng(9))
        assert a.cnot_error == b.cnot_error

    def test_random_calibration_clipping(self):
        g = linear_device(2)
        cal = random_calibration(
            g, rng=np.random.default_rng(1), mean=-5.0, sigma=0.0
        )
        assert cal.cnot_error[(0, 1)] == pytest.approx(1.0e-3)


class TestPaperCalibrations:
    def test_melbourne_calibration_covers_device(self):
        cal = melbourne_calibration()
        assert set(cal.cnot_error) == set(ibmq_16_melbourne().edges)
        assert cal.timestamp == "4/8/2020"

    def test_melbourne_has_figure10a_values(self):
        cal = melbourne_calibration()
        assert cal.cnot_error_rate(0, 1) == pytest.approx(1.87e-2)
        assert cal.cnot_error_rate(7, 8) == pytest.approx(2.87e-2)

    def test_figure6_calibration_reproduces_success_rates(self):
        cal = figure6_calibration()
        for edge, success in FIGURE6_CPHASE_SUCCESS.items():
            assert cal.cphase_success(*edge) == pytest.approx(success, rel=1e-9)
